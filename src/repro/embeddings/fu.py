"""Forward underapproximation / Outcome-Logic style triples
(Defs. 20–21, Props. 9–11, App. C.2).

FU reads triples forward: every pre state reaches *some* post state::

    |=FU {P} C {Q}   ⟺   |= {λS. P ∩ S ≠ ∅} C {λS. Q ∩ S ≠ ∅}
                      ⟺   |= {∃⟨φ⟩. φ∈P} C {∃⟨φ⟩. φ∈Q}

The k-ary generalization (Def. 21) uses execution tags like CHL but with
existential force (Prop. 11).
"""

from itertools import product

from ..assertions.semantic import SemAssertion, exists_state
from ..checker.validity import check_triple
from ..semantics.bigstep import post_states
from ..semantics.state import ExtState
from .common import tagged


def fu_valid(pre, command, post, universe):
    """Def. 20: every pre state reaches some post state."""
    domain = universe.domain
    for phi in universe.ext_states():
        if not pre(phi):
            continue
        finals = post_states(command, phi.prog, domain)
        if not any(post(ExtState(phi.log, s2)) for s2 in finals):
            return False
    return True


def fu_to_hyper(pre, post):
    """Prop. 9: the non-empty-intersection embedding."""
    return (
        exists_state(pre, "∃⟨φ⟩. φ∈P (FU pre)"),
        exists_state(post, "∃⟨φ⟩. φ∈Q (FU post)"),
    )


def check_prop9(pre, command, post, universe):
    """Prop. 9 as a checked biconditional."""
    hyper_pre, hyper_post = fu_to_hyper(pre, post)
    return (
        fu_valid(pre, command, post, universe),
        check_triple(hyper_pre, command, hyper_post, universe).valid,
    )


def ol_to_hyper(pre, post):
    """The Outcome Logic reading noted after Prop. 9: ``S`` is a
    *non-empty subset* of ``P`` (HL ∧ FU simultaneously)."""

    def make(state_pred, name):
        def fn(states):
            return len(states) > 0 and all(state_pred(phi) for phi in states)

        return SemAssertion(fn, name)

    return make(pre, "OL pre"), make(post, "OL post")


def ol_valid(pre, command, post, universe):
    """Outcome Logic validity: HL conjoined with FU (App. C.2)."""
    from .hl import hl_valid

    return hl_valid(pre, command, post, universe) and fu_valid(
        pre, command, post, universe
    )


def check_ol(pre, command, post, universe):
    """The OL correspondence as a checked biconditional."""
    hyper_pre, hyper_post = ol_to_hyper(pre, post)
    return (
        ol_valid(pre, command, post, universe),
        check_triple(hyper_pre, command, hyper_post, universe).valid,
    )


# ---------------------------------------------------------------------------
# k-FU (Def. 21, Props. 10–11)
# ---------------------------------------------------------------------------


def k_fu_valid(k, pre, command, post, universe):
    """Def. 21: every pre k-tuple reaches some post k-tuple."""
    domain = universe.domain
    states = universe.ext_states()
    for phis in product(states, repeat=k):
        if not pre(phis):
            continue
        found = False
        per_component = [
            [ExtState(phi.log, s2) for s2 in post_states(command, phi.prog, domain)]
            for phi in phis
        ]
        for finals in product(*per_component):
            if post(tuple(finals)):
                found = True
                break
        if not found:
            return False
    return True


def k_fu_to_hyper(k, pre, post, universe, tag="t"):
    """Prop. 11: the tagged existential embedding."""
    all_states = universe.ext_states()

    def make(tuple_pred, name):
        def fn(states):
            states = frozenset(states)
            for phis in product(all_states, repeat=k):
                if not tagged(phis, tag, k):
                    continue
                if not tuple_pred(phis):
                    continue
                if all(phi in states for phi in phis):
                    return True
            return False

        return SemAssertion(fn, name)

    return make(pre, "k-FU pre'"), make(post, "k-FU post'")


def check_prop11(k, pre, command, post, universe, tag="t"):
    """Prop. 11 as a checked biconditional (``t`` free in neither
    assertion, tags available in the logical domain)."""
    hyper_pre, hyper_post = k_fu_to_hyper(k, pre, post, universe, tag)
    return (
        k_fu_valid(k, pre, command, post, universe),
        check_triple(hyper_pre, command, hyper_post, universe).valid,
    )
