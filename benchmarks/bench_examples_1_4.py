"""E9 — Example 1 (the Exist rule is needed for completeness) and
Example 4 (an intersection rule would be unsound).

Expected, per the paper:
- Choice alone proves (P0∨P2) ⊗ (P1∨P3), which admits the two spurious
  sets {φ0,φ3}, {φ2,φ1}; routing through Exist eliminates them;
- the intersection-combination of two valid triples is invalid."""

from repro.assertions import EqualsSet, OTimes, SemAssertion
from repro.checker import check_triple, small_universe
from repro.lang import Assign, Choice, Skip, parse_command
from repro.lang.expr import V
from repro.logic import rule_assign, rule_choice, rule_cons, rule_exist, rule_skip
from repro.semantics.state import ExtState, State
from repro.util import iter_subsets

import common


def test_example1_exist_rule_necessity(benchmark):
    uni = small_universe(["x"], 0, 3)
    phi = [ExtState(State({}), State({"x": v})) for v in range(4)]
    pins = [EqualsSet(frozenset((phi[v],))) for v in range(4)]
    command = Choice(Skip(), Assign("x", V("x") + 1))
    oracle = common.oracle_for(uni)

    def run():
        # Choice-only: the most precise conclusion has spurious disjuncts
        choice_post = OTimes(pins[0] | pins[2], pins[1] | pins[3])
        spurious = frozenset((phi[0], phi[3]))
        spurious_admitted = choice_post.holds(spurious, uni.domain)
        # Exist: case-split on which pinned set we started from
        premises = {}
        for start in (0, 2):
            pre = pins[start]
            skip_proof = rule_cons(pre, pre, rule_skip(pre), oracle)
            inc_post = pins[start + 1]
            inc_proof = rule_cons(
                pre, inc_post, rule_assign(inc_post, "x", V("x") + 1), oracle
            )
            premises[start] = rule_choice(skip_proof, inc_proof)
        exist_proof = rule_exist(premises)
        precise_rejects_spurious = not exist_proof.post.holds(spurious, uni.domain)
        target = frozenset((phi[0], phi[1]))
        precise_accepts_real = exist_proof.post.holds(target, uni.domain)
        conclusion_valid = check_triple(
            exist_proof.pre, exist_proof.command, exist_proof.post, uni
        ).valid
        return (
            spurious_admitted,
            precise_rejects_spurious,
            precise_accepts_real,
            conclusion_valid,
        )

    spurious, rejects, accepts, valid = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nChoice-only post admits spurious {φ0,φ3}: %s" % spurious)
    print("Exist-refined post rejects it: %s, accepts {φ0,φ1}: %s" % (rejects, accepts))
    assert spurious and rejects and accepts and valid


def test_example4_intersection_unsound(benchmark):
    uni = small_universe(["x"], 0, 2)
    phi1 = ExtState(State({}), State({"x": 1}))
    phi2 = ExtState(State({}), State({"x": 2}))
    p1 = EqualsSet(frozenset((phi1,)))
    p2 = EqualsSet(frozenset((phi2,)))
    cmd = parse_command("x := 1")

    def inter(a, b):
        def fn(states):
            for s1 in iter_subsets(uni.ext_states()):
                for s2 in iter_subsets(uni.ext_states()):
                    if s1 & s2 == states and a.holds(s1) and b.holds(s2):
                        return True
            return False

        return SemAssertion(fn, "∃S1,S2. S = S1∩S2 ∧ …")

    def run():
        premise1 = check_triple(p1, cmd, p1, uni).valid
        premise2 = check_triple(p2, cmd, p1, uni).valid
        combined = check_triple(inter(p1, p2), cmd, inter(p1, p1), uni).valid
        return premise1, premise2, combined

    premise1, premise2, combined = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExample 4: premises valid: %s/%s; intersection-combined triple "
          "valid: %s (unsound rule, as the paper shows)" % (premise1, premise2, combined))
    assert premise1 and premise2 and not combined
