"""Shared fixtures: small universes and oracles."""

import pytest

from repro.assertions import EntailmentOracle
from repro.checker import Universe
from repro.values import IntRange


@pytest.fixture
def uni_x2():
    """One program variable ``x`` over {0, 1} — 2 extended states."""
    return Universe(["x"], IntRange(0, 1))


@pytest.fixture
def uni_x3():
    """One program variable ``x`` over {0, 1, 2} — 3 extended states."""
    return Universe(["x"], IntRange(0, 2))


@pytest.fixture
def uni_xy2():
    """Two program variables over {0, 1} — 4 extended states."""
    return Universe(["x", "y"], IntRange(0, 1))


@pytest.fixture
def uni_hl2():
    """Security-shaped universe: high ``h`` and low ``l`` over {0, 1}."""
    return Universe(["h", "l"], IntRange(0, 1))


@pytest.fixture
def uni_tagged():
    """``x`` over {0, 1} with a logical tag ``t`` over {1, 2}."""
    return Universe(["x"], IntRange(0, 1), lvars=["t"], lvar_domain=IntRange(1, 2))


def make_oracle(universe, method="brute"):
    """An entailment oracle for the given universe."""
    return EntailmentOracle(universe.ext_states(), universe.domain, method=method)


@pytest.fixture
def oracle_x2(uni_x2):
    return make_oracle(uni_x2)


@pytest.fixture
def oracle_xy2(uni_xy2):
    return make_oracle(uni_xy2)
