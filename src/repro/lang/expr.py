"""Program expressions and Boolean predicates.

The paper models expressions semantically, as total functions from program
states to values (Def. 1).  We use a small syntax tree instead, for three
reasons: expressions stay hashable and comparable, the syntactic assignment
rule ``AssignS`` (Fig. 3) needs *substitution*, and the same trees embed
into hyper-expressions (Def. 9) via :func:`repro.assertions.syntax.prog_to_hyper`.

Expressions are total: division and modulo by zero evaluate to ``0`` and
out-of-range tuple indexing evaluates to ``0``, matching the paper's
stipulation that "expression evaluation is total, such that
division-by-zero and other errors cannot occur" (Sect. 3.1).
"""

from dataclasses import dataclass
from typing import Tuple

from ..errors import EvaluationError


def _safe_div(a, b):
    return 0 if b == 0 else a // b


def _safe_mod(a, b):
    return 0 if b == 0 else a % b


def _concat(a, b):
    return tuple(a) + tuple(b)


def _index(a, i):
    seq = tuple(a)
    if 0 <= i < len(seq):
        return seq[i]
    return 0


BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": _safe_div,
    "%": _safe_mod,
    "xor": lambda a, b: a ^ b,
    "min": min,
    "max": max,
    "++": _concat,
    "[]": _index,
}
"""Binary operators: name -> total Python implementation."""

UNOPS = {
    "-": lambda a: -a,
    "abs": abs,
}
"""Unary operators."""

FUNS = {
    "len": lambda a: len(tuple(a)),
    "abs": abs,
    "min": min,
    "max": max,
}
"""Named functions usable via :class:`FunApp` (the ``f(e)`` production)."""

CMPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}
"""Comparison operators for predicates."""


class Expr:
    """Abstract base of arithmetic/value expressions.

    Arithmetic operators are overloaded for convenient construction
    (``V("x") + 1``).  Comparisons are built with the named methods
    (``V("x").le(9)``) because ``__eq__`` is reserved for structural
    equality of trees.
    """


    def eval(self, state):
        """Value of this expression in ``state`` (a program state)."""
        raise NotImplementedError

    def free_vars(self):
        """Frozenset of program variables read by this expression."""
        raise NotImplementedError

    def subst(self, mapping):
        """Simultaneously substitute expressions for variables.

        ``mapping`` maps variable names to :class:`Expr`.
        """
        raise NotImplementedError

    # -- construction sugar -------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other):
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other):
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other):
        return BinOp("*", as_expr(other), self)

    def __neg__(self):
        return UnOp("-", self)

    def eq(self, other):
        """The predicate ``self == other``."""
        return Cmp("==", self, as_expr(other))

    def ne(self, other):
        """The predicate ``self != other``."""
        return Cmp("!=", self, as_expr(other))

    def lt(self, other):
        """The predicate ``self < other``."""
        return Cmp("<", self, as_expr(other))

    def le(self, other):
        """The predicate ``self <= other``."""
        return Cmp("<=", self, as_expr(other))

    def gt(self, other):
        """The predicate ``self > other``."""
        return Cmp(">", self, as_expr(other))

    def ge(self, other):
        """The predicate ``self >= other``."""
        return Cmp(">=", self, as_expr(other))


@dataclass(frozen=True)
class Lit(Expr):
    """A literal constant (int, bool, or tuple)."""

    value: object


    def eval(self, state):
        return self.value

    def free_vars(self):
        return frozenset()

    def subst(self, mapping):
        return self


@dataclass(frozen=True)
class Var(Expr):
    """A program-variable read."""

    name: str


    def eval(self, state):
        try:
            return state[self.name]
        except KeyError:
            raise EvaluationError("unbound program variable %r" % self.name)

    def free_vars(self):
        return frozenset((self.name,))

    def subst(self, mapping):
        return mapping.get(self.name, self)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operator application (see :data:`BINOPS`)."""

    op: str
    left: Expr
    right: Expr


    def eval(self, state):
        try:
            fn = BINOPS[self.op]
        except KeyError:
            raise EvaluationError("unknown binary operator %r" % self.op)
        return fn(self.left.eval(state), self.right.eval(state))

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def subst(self, mapping):
        return BinOp(self.op, self.left.subst(mapping), self.right.subst(mapping))


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operator application (see :data:`UNOPS`)."""

    op: str
    operand: Expr


    def eval(self, state):
        try:
            fn = UNOPS[self.op]
        except KeyError:
            raise EvaluationError("unknown unary operator %r" % self.op)
        return fn(self.operand.eval(state))

    def free_vars(self):
        return self.operand.free_vars()

    def subst(self, mapping):
        return UnOp(self.op, self.operand.subst(mapping))


@dataclass(frozen=True)
class FunApp(Expr):
    """A named total function applied to argument expressions (``f(e)``)."""

    name: str
    args: Tuple[Expr, ...]


    def eval(self, state):
        try:
            fn = FUNS[self.name]
        except KeyError:
            raise EvaluationError("unknown function %r" % self.name)
        return fn(*(a.eval(state) for a in self.args))

    def free_vars(self):
        out = frozenset()
        for a in self.args:
            out |= a.free_vars()
        return out

    def subst(self, mapping):
        return FunApp(self.name, tuple(a.subst(mapping) for a in self.args))


@dataclass(frozen=True)
class TupleLit(Expr):
    """A tuple (list) constructor, e.g. ``[s xor k]`` in Fig. 6."""

    items: Tuple[Expr, ...]


    def eval(self, state):
        return tuple(i.eval(state) for i in self.items)

    def free_vars(self):
        out = frozenset()
        for i in self.items:
            out |= i.free_vars()
        return out

    def subst(self, mapping):
        return TupleLit(tuple(i.subst(mapping) for i in self.items))


# ---------------------------------------------------------------------------
# Boolean predicates over a single program state
# ---------------------------------------------------------------------------


class BExpr:
    """Abstract base of Boolean predicates over program states."""


    def eval(self, state):
        """Truth value of this predicate in ``state``."""
        raise NotImplementedError

    def free_vars(self):
        """Frozenset of program variables read by this predicate."""
        raise NotImplementedError

    def subst(self, mapping):
        """Substitute expressions for program variables."""
        raise NotImplementedError

    def negate(self):
        """The logical negation, with double negations collapsed."""
        return BNot(self)

    def __and__(self, other):
        return BAnd(self, as_bexpr(other))

    def __or__(self, other):
        return BOr(self, as_bexpr(other))

    def __invert__(self):
        return self.negate()


@dataclass(frozen=True)
class BLit(BExpr):
    """A Boolean literal."""

    value: bool


    def eval(self, state):
        return self.value

    def free_vars(self):
        return frozenset()

    def subst(self, mapping):
        return self

    def negate(self):
        return BLit(not self.value)


@dataclass(frozen=True)
class Cmp(BExpr):
    """A comparison between two expressions (see :data:`CMPS`)."""

    op: str
    left: Expr
    right: Expr


    _NEG = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

    def eval(self, state):
        try:
            fn = CMPS[self.op]
        except KeyError:
            raise EvaluationError("unknown comparison %r" % self.op)
        return fn(self.left.eval(state), self.right.eval(state))

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def subst(self, mapping):
        return Cmp(self.op, self.left.subst(mapping), self.right.subst(mapping))

    def negate(self):
        return Cmp(self._NEG[self.op], self.left, self.right)


@dataclass(frozen=True)
class BAnd(BExpr):
    """Conjunction."""

    left: BExpr
    right: BExpr


    def eval(self, state):
        return self.left.eval(state) and self.right.eval(state)

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def subst(self, mapping):
        return BAnd(self.left.subst(mapping), self.right.subst(mapping))

    def negate(self):
        return BOr(self.left.negate(), self.right.negate())


@dataclass(frozen=True)
class BOr(BExpr):
    """Disjunction."""

    left: BExpr
    right: BExpr


    def eval(self, state):
        return self.left.eval(state) or self.right.eval(state)

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def subst(self, mapping):
        return BOr(self.left.subst(mapping), self.right.subst(mapping))

    def negate(self):
        return BAnd(self.left.negate(), self.right.negate())


@dataclass(frozen=True)
class BNot(BExpr):
    """Negation."""

    operand: BExpr


    def eval(self, state):
        return not self.operand.eval(state)

    def free_vars(self):
        return self.operand.free_vars()

    def subst(self, mapping):
        return BNot(self.operand.subst(mapping))

    def negate(self):
        return self.operand


TRUE = BLit(True)
"""The always-true predicate."""

FALSE = BLit(False)
"""The always-false predicate."""


def V(name):
    """Shorthand for :class:`Var`."""
    return Var(name)


def lit(value):
    """Shorthand for :class:`Lit`."""
    return Lit(value)


def as_expr(value):
    """Coerce Python ints/bools/tuples to :class:`Lit`; pass exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, bool, tuple)):
        return Lit(value)
    raise TypeError("cannot coerce %r to an expression" % (value,))


def as_bexpr(value):
    """Coerce Python bools to :class:`BLit`; pass predicates through."""
    if isinstance(value, BExpr):
        return value
    if isinstance(value, bool):
        return BLit(value)
    raise TypeError("cannot coerce %r to a predicate" % (value,))


def implies(antecedent, consequent):
    """The predicate ``antecedent => consequent``."""
    return BOr(as_bexpr(antecedent).negate(), as_bexpr(consequent))


def conj(*preds):
    """N-ary conjunction (``TRUE`` when empty)."""
    preds = [as_bexpr(p) for p in preds]
    if not preds:
        return TRUE
    out = preds[0]
    for p in preds[1:]:
        out = BAnd(out, p)
    return out


def disj(*preds):
    """N-ary disjunction (``FALSE`` when empty)."""
    preds = [as_bexpr(p) for p in preds]
    if not preds:
        return FALSE
    out = preds[0]
    for p in preds[1:]:
        out = BOr(out, p)
    return out
