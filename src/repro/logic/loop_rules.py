"""Rules for while loops and synchronized branching (Fig. 5).

All four loop rules plus IfSync, with builder helpers exposing the exact
premise pre/postcondition objects a caller must prove, so premise matching
stays structural.

- :func:`rule_while_desugared` — the fully general rule derived from Iter;
- :func:`rule_while_sync` — synchronized control flow, natural invariants;
- :func:`rule_if_sync` — synchronized branching;
- :func:`rule_while_forall_exists` — While-∀*∃* for ``∀*∃*`` postconditions;
- :func:`rule_while_exists` — While-∃ for top-level existentials
  (the paper's first loop rule for ∃*∀*-hyperproperties).
"""

from ..assertions.derived import PartialEval
from ..assertions.semantic import OTimesFamily
from ..assertions.sugar import box, emp_s, low_pred
from ..assertions.syntax import (
    HLit,
    SAnd,
    SynAssertion,
    exists_s,
    pred_to_hyper,
)
from ..errors import ProofError
from ..lang.ast import Assume, Seq
from ..lang.expr import as_bexpr
from ..lang.sugar import if_then, while_loop
from .judgment import (
    ProofNode,
    Triple,
    require,
    require_match,
    require_same_command,
)


# ---------------------------------------------------------------------------
# WhileDesugared
# ---------------------------------------------------------------------------


def while_desugared_exit_pre(family, stable_from, period=1):
    """The ``⨂_{n∈N} I_n`` precondition object for the exit premise."""
    return OTimesFamily(family, stable_from, period)


def rule_while_desugared(family, body_proofs, stable_from, exit_proof, cond, period=1):
    """WhileDesugared (Fig. 5): from ``⊢{I_n} assume b; C {I_{n+1}}`` (all n)
    and ``⊢{⨂_n I_n} assume !b {Q}``, conclude ``⊢{I_0} while(b){C} {Q}``.

    ``body_proofs`` covers ``n = 0 … stable_from + period - 1`` with the
    family eventually periodic (see
    :func:`repro.logic.core_rules.rule_iter`).  Build the exit premise's
    precondition with :func:`while_desugared_exit_pre` so it matches
    structurally.
    """
    cond = as_bexpr(cond)
    body_proofs = tuple(body_proofs)
    require(
        len(body_proofs) == stable_from + period, "WhileDesugared: premise count"
    )
    for r in range(period):
        require_match(
            family(stable_from + r),
            family(stable_from + r + period),
            "WhileDesugared periodicity",
        )
    guarded = body_proofs[0].command
    require(
        isinstance(guarded, Seq)
        and isinstance(guarded.first, Assume)
        and guarded.first.cond == cond,
        "WhileDesugared: body premises must be about `assume b; C`",
    )
    body = guarded.second
    for n, proof in enumerate(body_proofs):
        require_same_command(guarded, proof.command, "WhileDesugared premise %d" % n)
        require_match(proof.pre, family(n), "WhileDesugared premise %d pre" % n)
        post_index = n + 1
        if post_index >= stable_from + period:
            post_index = stable_from + (post_index - stable_from) % period
        require_match(
            proof.post, family(post_index), "WhileDesugared premise %d post" % n
        )
    require(
        isinstance(exit_proof.command, Assume)
        and exit_proof.command.cond == cond.negate(),
        "WhileDesugared: exit premise must be about `assume !b`",
    )
    require(
        isinstance(exit_proof.pre, OTimesFamily)
        and exit_proof.pre.family is family
        and exit_proof.pre.stable_from == stable_from
        and exit_proof.pre.period == period,
        "WhileDesugared: exit premise precondition must be the ⨂ of the "
        "same family (use while_desugared_exit_pre)",
    )
    triple = Triple(family(0), while_loop(cond, body), exit_proof.post)
    return ProofNode(
        "WhileDesugared", triple, body_proofs + (exit_proof,)
    )


# ---------------------------------------------------------------------------
# WhileSync / IfSync
# ---------------------------------------------------------------------------


def while_sync_body_pre(invariant, cond):
    """The ``I ∧ □b`` precondition object for the WhileSync body premise."""
    return invariant & box(as_bexpr(cond))


def while_sync_post(invariant, cond):
    """The ``(I ∨ emp) ∧ □(!b)`` conclusion postcondition of WhileSync."""
    return (invariant | emp_s) & box(as_bexpr(cond).negate())


def rule_while_sync(invariant, cond, body_proof, oracle):
    """WhileSync (Fig. 5)::

        I |= low(b)     ⊢ {I ∧ □b} C {I}
        --------------------------------------------
        ⊢ {I} while (b) {C} {(I ∨ emp) ∧ □(!b)}

    The ``emp`` disjunct covers non-termination; see
    :func:`repro.logic.termination_rules.rule_while_sync_term` for the
    terminating variant that drops it (App. E).
    """
    cond = as_bexpr(cond)
    before = len(oracle.assumed)
    oracle.require(invariant, low_pred(cond), "WhileSync: I |= low(b)")
    assumed = tuple(
        "%s: %s |= %s" % (ctx, p.describe(), q.describe())
        for p, q, ctx in oracle.assumed[before:]
    )
    require_match(body_proof.pre, while_sync_body_pre(invariant, cond), "WhileSync body pre")
    require_match(body_proof.post, invariant, "WhileSync body post")
    triple = Triple(
        invariant, while_loop(cond, body_proof.command), while_sync_post(invariant, cond)
    )
    return ProofNode("WhileSync", triple, (body_proof,), assumptions=assumed)


def if_sync_then_pre(pre, cond):
    """The ``P ∧ □b`` premise precondition of IfSync."""
    return pre & box(as_bexpr(cond))


def if_sync_else_pre(pre, cond):
    """The ``P ∧ □(!b)`` premise precondition of IfSync."""
    return pre & box(as_bexpr(cond).negate())


def rule_if_sync(pre, cond, then_proof, else_proof, oracle):
    """IfSync (Fig. 5)::

        P |= low(b)   ⊢{P ∧ □b} C1 {Q}   ⊢{P ∧ □!b} C2 {Q}
        ---------------------------------------------------
        ⊢ {P} if (b) {C1} else {C2} {Q}
    """
    cond = as_bexpr(cond)
    before = len(oracle.assumed)
    oracle.require(pre, low_pred(cond), "IfSync: P |= low(b)")
    assumed = tuple(
        "%s: %s |= %s" % (ctx, p.describe(), q.describe())
        for p, q, ctx in oracle.assumed[before:]
    )
    require_match(then_proof.pre, if_sync_then_pre(pre, cond), "IfSync then-pre")
    require_match(else_proof.pre, if_sync_else_pre(pre, cond), "IfSync else-pre")
    require_match(then_proof.post, else_proof.post, "IfSync posts")
    from ..lang.sugar import if_then_else

    triple = Triple(
        pre,
        if_then_else(cond, then_proof.command, else_proof.command),
        then_proof.post,
    )
    return ProofNode("IfSync", triple, (then_proof, else_proof), assumptions=assumed)


# ---------------------------------------------------------------------------
# While-∀*∃*
# ---------------------------------------------------------------------------


def rule_while_forall_exists(invariant, cond, body_proof, exit_proof):
    """While-∀*∃* (Fig. 5)::

        ⊢{I} if (b) {C} {I}    ⊢{I} assume !b {Q}    no ∀⟨_⟩ after ∃ in Q
        -----------------------------------------------------------------
        ⊢ {I} while (b) {C} {Q}

    The body premise is about the *one-armed conditional* ``if (b) {C}``,
    so the invariant ranges over executions still in the loop *and*
    executions that already exited — the paper's key idea for unaligned
    control flow (Sect. 5.2).
    """
    cond = as_bexpr(cond)
    require_match(body_proof.pre, invariant, "While-∀*∃* body pre")
    require_match(body_proof.post, invariant, "While-∀*∃* body post")
    conditional = body_proof.command
    expected_shape = None
    from ..lang.sugar import match_if_then_else
    from ..lang.ast import Skip

    m = match_if_then_else(conditional)
    if m is not None and m[2] == Skip():
        expected_shape = m
    else:
        # the one-armed sugar `(assume b; C) + assume !b`
        from ..lang.ast import Choice

        if (
            isinstance(conditional, Choice)
            and isinstance(conditional.left, Seq)
            and isinstance(conditional.left.first, Assume)
            and conditional.left.first.cond == cond
            and isinstance(conditional.right, Assume)
            and conditional.right.cond == cond.negate()
        ):
            expected_shape = (cond, conditional.left.second, None)
    require(
        expected_shape is not None and expected_shape[0] == cond,
        "While-∀*∃*: body premise must be about `if (b) {C}`",
    )
    body = expected_shape[1]
    require(
        isinstance(exit_proof.command, Assume)
        and exit_proof.command.cond == cond.negate(),
        "While-∀*∃*: exit premise must be about `assume !b`",
    )
    require_match(exit_proof.pre, invariant, "While-∀*∃* exit pre")
    post = exit_proof.post
    require(
        isinstance(post, SynAssertion),
        "While-∀*∃*: the postcondition must be syntactic so the "
        "quantifier-shape side condition is checkable",
    )
    require(
        post.forall_not_after_exists(),
        "While-∀*∃*: no ∀⟨_⟩ may occur after an ∃ in the postcondition "
        "(the rule is unsound for top-level existentials — use While-∃)",
    )
    triple = Triple(invariant, while_loop(cond, body), post)
    return ProofNode("While-∀*∃*", triple, (body_proof, exit_proof))


# ---------------------------------------------------------------------------
# While-∃
# ---------------------------------------------------------------------------


def while_exists_variant_pre(p_body, state, cond, variant, value):
    """First-premise precondition for value ``v``::

        ∃⟨φ⟩. P_φ ∧ b(φ) ∧ v = e(φ)
    """
    cond = as_bexpr(cond)
    return exists_s(
        state,
        SAnd(p_body, SAnd(pred_to_hyper(cond, state), HLit(value).eq(variant))),
    )


def while_exists_variant_post(p_body, state, variant, value):
    """First-premise postcondition for value ``v``::

        ∃⟨φ⟩. P_φ ∧ e(φ) ≺ v

    with ``a ≺ b  :=  0 ≤ a ∧ a < b`` (footnote 12 — well-founded on ℕ).
    """
    return exists_s(
        state,
        SAnd(p_body, SAnd(HLit(0).le(variant), variant.lt(HLit(value)))),
    )


def while_exists_fixed_pre(p_body, state, phi):
    """Second-premise precondition ``P_φ`` for a concrete state ``φ``."""
    return PartialEval(p_body, {state: phi})


def while_exists_fixed_post(q_body, state, phi):
    """Second-premise postcondition ``Q_φ`` for a concrete state ``φ``."""
    return PartialEval(q_body, {state: phi})


def rule_while_exists(
    p_body,
    q_body,
    state,
    cond,
    variant,
    variant_proofs,
    fixed_proofs,
    universe,
):
    """While-∃ (Fig. 5) — loops under a top-level existential::

        ∀v. ⊢{∃⟨φ⟩. P_φ ∧ b(φ) ∧ v = e(φ)} if (b) {C} {∃⟨φ⟩. P_φ ∧ e(φ) ≺ v}
        ∀φ. ⊢{P_φ} while (b) {C} {Q_φ}          ≺ well-founded
        --------------------------------------------------------------------
        ⊢ {∃⟨φ⟩. P_φ} while (b) {C} {∃⟨φ⟩. Q_φ}

    ``p_body``/``q_body`` are syntactic assertions with the witness state
    name ``state`` free; ``variant`` is a hyper-expression over that state
    (the ``e(φ)`` whose ``≺``-descent forces the witness out of the loop).
    ``variant_proofs`` maps each domain value ``v`` to its premise proof;
    ``fixed_proofs`` maps each extended state of the universe to its
    premise proof.  The well-founded order is fixed to ``<`` on ℕ.
    """
    cond = as_bexpr(cond)
    require(isinstance(p_body, SynAssertion), "While-∃: P_φ must be syntactic")
    require(isinstance(q_body, SynAssertion), "While-∃: Q_φ must be syntactic")
    variant_proofs = dict(variant_proofs)
    fixed_proofs = dict(fixed_proofs)
    domain = universe.domain
    require(
        set(variant_proofs.keys()) >= set(domain.values),
        "While-∃: first premise needs a proof for every domain value",
    )
    states = universe.ext_states()
    require(
        set(fixed_proofs.keys()) >= set(states),
        "While-∃: second premise needs a proof for every universe state",
    )
    # shape-check the first premise family
    sample = variant_proofs[domain.values[0]]
    conditional = sample.command
    for v in domain.values:
        proof = variant_proofs[v]
        require_same_command(conditional, proof.command, "While-∃ premise 1")
        require_match(
            proof.pre,
            while_exists_variant_pre(p_body, state, cond, variant, v),
            "While-∃ premise 1 pre (v=%r)" % (v,),
        )
        require_match(
            proof.post,
            while_exists_variant_post(p_body, state, variant, v),
            "While-∃ premise 1 post (v=%r)" % (v,),
        )
    expected_conditional = if_then(cond, _extract_if_body(conditional, cond))
    require(
        conditional == expected_conditional,
        "While-∃: first premise must be about `if (b) {C}`",
    )
    body = _extract_if_body(conditional, cond)
    loop = while_loop(cond, body)
    for phi in states:
        proof = fixed_proofs[phi]
        require_same_command(loop, proof.command, "While-∃ premise 2")
        require_match(
            proof.pre,
            while_exists_fixed_pre(p_body, state, phi),
            "While-∃ premise 2 pre",
        )
        require_match(
            proof.post,
            while_exists_fixed_post(q_body, state, phi),
            "While-∃ premise 2 post",
        )
    triple = Triple(exists_s(state, p_body), loop, exists_s(state, q_body))
    premises = tuple(variant_proofs.values()) + tuple(fixed_proofs.values())
    return ProofNode("While-∃", triple, premises)


def _extract_if_body(conditional, cond):
    """Recover ``C`` from the desugared ``if (b) {C}``."""
    from ..lang.ast import Choice

    if (
        isinstance(conditional, Choice)
        and isinstance(conditional.left, Seq)
        and isinstance(conditional.left.first, Assume)
        and conditional.left.first.cond == cond
        and isinstance(conditional.right, Assume)
    ):
        return conditional.left.second
    raise ProofError("While-∃: expected a one-armed `if (b) {C}` premise command")
