"""Units of work for the pluggable verification API.

A :class:`VerificationTask` is one hyper-triple ``{pre} command {post}``
(plus optional Fig. 5 loop annotations), fully parsed; a
:class:`Budget` is a cooperative wall-clock allowance for one backend
attempt; an :class:`Attempt` is what one backend reports back.

Verdicts are three-valued:

- ``True``  — the backend established the triple (a proof or an
  exhaustive check over the universe);
- ``False`` — the backend refuted it (a counterexample);
- ``None``  — the backend cannot decide (outside its fragment, budget
  exhausted, or the check it ran is only evidence) and the chain moves
  on to the next backend.
"""

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..assertions.base import Assertion
from ..lang.ast import Command
from ..logic.judgment import ProofNode

#: The one clock every API timing reads (budgets, attempt/report elapsed).
#: ``time.monotonic`` is immune to wall-clock adjustments (NTP slews,
#: manual clock changes), so recorded ``elapsed`` values can never go
#: negative mid-batch; keeping a single aliased source also lets tests
#: substitute a fake clock in one place.
clock = time.monotonic


@dataclass(frozen=True)
class VerificationTask:
    """One hyper-triple to verify, with optional loop annotations.

    ``invariant`` is the WhileSync invariant consumed by
    :class:`~repro.api.backends.LoopBackend`; straight-line and oracle
    backends ignore it.  ``label`` is a free-form tag surfaced in
    :meth:`~repro.api.session.Report.summary`.
    """

    pre: Assertion
    command: Command
    post: Assertion
    invariant: Optional[Assertion] = None
    label: str = ""

    def describe(self):
        head = "%s: " % self.label if self.label else ""
        return "%s{%s} %r {%s}" % (
            head,
            self.pre.describe(),
            self.command,
            self.post.describe(),
        )


class Budget:
    """A cooperative wall-clock budget for one backend attempt.

    Backends poll :attr:`expired` inside their enumeration loops and bail
    out with an inconclusive :class:`Attempt` when it trips — nothing is
    preempted, so a single very slow step can still overrun.
    ``Budget(None)`` never expires.
    """

    __slots__ = ("seconds", "_deadline")

    def __init__(self, seconds=None):
        self.seconds = seconds
        self._deadline = None if seconds is None else clock() + seconds

    @property
    def expired(self):
        return self._deadline is not None and clock() >= self._deadline

    def remaining(self):
        """Seconds left, or ``None`` for an unlimited budget."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - clock())

    def __repr__(self):
        if self.seconds is None:
            return "Budget(unlimited)"
        return "Budget(%.3gs, %.3gs left)" % (self.seconds, self.remaining())


@dataclass
class Attempt:
    """One backend's structured report on one task.

    ``verdict`` is three-valued (see the module docstring); ``method``
    names the decision procedure actually used (e.g. ``syntactic-wp+sat``
    records that the closing entailment really went through the SAT
    encoding, not a silent brute-force fallback); ``assumptions`` lists
    unchecked entailments inherited from an assuming oracle.
    """

    backend: str
    verdict: Optional[bool]
    method: str
    proof: Optional[ProofNode] = None
    counterexample: Optional[str] = None
    elapsed: float = 0.0
    assumptions: Tuple[str, ...] = ()
    note: str = ""

    @property
    def decided(self):
        return self.verdict is not None

    def __repr__(self):
        verdict = {True: "verified", False: "refuted", None: "undecided"}[self.verdict]
        extra = " (%s)" % self.note if self.note else ""
        return "Attempt(%s: %s via %s, %.3fs%s)" % (
            self.backend,
            verdict,
            self.method,
            self.elapsed,
            extra,
        )
