"""Example 3 (refinement via product programs) and App. E.2 (recurrent
sets / non-termination)."""

from hypothesis import given, settings

from repro.checker import Universe, small_universe
from repro.hyperprops import (
    greatest_recurrent_set,
    has_nonterminating_execution,
    is_recurrent_set,
    product_program,
    recurrence_via_triple,
    refines_direct,
    refines_via_hyper_triple,
)
from repro.lang import parse_bexpr, parse_command
from repro.semantics.state import State
from repro.values import IntRange

from tests.strategies import loop_free_commands

UNI = Universe(["x", "t"], IntRange(0, 1))


class TestRefinement:
    def test_deterministic_refines_nondeterministic(self):
        abstract = parse_command("x := nonDet()")
        concrete = parse_command("x := 0")
        assert refines_direct(concrete, abstract, UNI)
        assert not refines_direct(abstract, concrete, UNI)

    def test_every_command_refines_itself(self):
        cmd = parse_command("x := 1 - x")
        assert refines_direct(cmd, cmd, UNI)

    def test_product_program_shape(self):
        c1 = parse_command("skip")
        c2 = parse_command("x := 0")
        product = product_program(c1, c2, "t")
        from repro.lang import Assign, Choice, Seq

        assert product == Choice(Seq(Assign("t", 1), c1), Seq(Assign("t", 2), c2))

    def test_example3_agreement(self):
        """Example 3: refinement ⟺ the product-program hyper-triple."""
        pairs = [
            ("x := 0", "x := nonDet()"),
            ("x := nonDet()", "x := 0"),
            ("x := 1 - x", "x := 1 - x"),
            ("assume x > 0", "skip"),
            ("x := 1", "x := 0"),
        ]
        for concrete_text, abstract_text in pairs:
            concrete = parse_command(concrete_text)
            abstract = parse_command(abstract_text)
            assert refines_direct(concrete, abstract, UNI) == refines_via_hyper_triple(
                concrete, abstract, UNI
            ), (concrete_text, abstract_text)

    @given(loop_free_commands(max_depth=2), loop_free_commands(max_depth=2))
    @settings(max_examples=10, deadline=None)
    def test_example3_agreement_random(self, concrete, abstract):
        from repro.lang.analysis import written_vars, read_vars

        if "t" in written_vars(concrete) | written_vars(abstract):
            return  # tag must be fresh
        if "t" in read_vars(concrete) | read_vars(abstract):
            return
        uni = Universe(["x", "y", "t"], IntRange(0, 1))
        assert refines_direct(concrete, abstract, uni) == refines_via_hyper_triple(
            concrete, abstract, uni
        )


class TestRecurrentSets:
    def setup_method(self):
        self.uni = small_universe(["x"], 0, 2)
        self.cond = parse_bexpr("x > 0")

    def test_recurrent_set_detected(self):
        body = parse_command("x := max(x - 1, 1)")  # stuck at 1 forever
        region = frozenset((State({"x": 1}), State({"x": 2})))
        assert is_recurrent_set(region, self.cond, body, self.uni.domain)
        assert has_nonterminating_execution(self.cond, body, self.uni)

    def test_terminating_loop_has_empty_greatest(self):
        body = parse_command("x := x - 1")
        assert greatest_recurrent_set(self.cond, body, self.uni) == frozenset()
        assert not has_nonterminating_execution(self.cond, body, self.uni)

    def test_nondeterministic_escape_still_recurrent(self):
        """x := nonDet() inside the loop: can always stay > 0."""
        body = parse_command("x := nonDet(); assume x > 0")
        region = greatest_recurrent_set(self.cond, body, self.uni)
        assert region
        assert is_recurrent_set(region, self.cond, body, self.uni.domain)

    def test_guard_violating_region_rejected(self):
        body = parse_command("skip")
        region = frozenset((State({"x": 0}),))
        assert not is_recurrent_set(region, self.cond, body, self.uni.domain)

    def test_recurrence_via_hyper_triple(self):
        """App. E.2: recurrence certified by the hyper-triple
        {∃⟨φ⟩. φ∈R} assume b; C {∃⟨φ⟩. φ∈R}."""
        body = parse_command("x := max(x - 1, 1)")
        region = frozenset((State({"x": 1}), State({"x": 2})))
        assert recurrence_via_triple(region, self.cond, body, self.uni)
        bad_region = frozenset((State({"x": 1}), State({"x": 0})))
        assert not recurrence_via_triple(bad_region, self.cond, body, self.uni)

    def test_triple_agrees_with_direct(self):
        bodies = ["x := x - 1", "x := max(x - 1, 1)", "x := nonDet()"]
        for text in bodies:
            body = parse_command(text)
            region = greatest_recurrent_set(self.cond, body, self.uni)
            if region:
                assert recurrence_via_triple(region, self.cond, body, self.uni)
