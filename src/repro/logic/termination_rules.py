"""Termination-based rules (App. E, Fig. 14).

Terminating hyper-triples ``⊢⇓ {P} C {Q}`` (Def. 24) additionally promise
that every initial state has at least one terminating execution.  That
extra knowledge buys two rules the plain logic cannot have:

- :func:`rule_frame` — frame *any* syntactic assertion, including
  ``∃⟨_⟩`` (FrameSafe must forbid those);
- :func:`rule_while_sync_term` — WhileSync without the ``emp`` disjunct,
  unlocked by a variant that strictly decreases every iteration, which is
  what ∃⁺∀*-postconditions need.

Atomic commands other than ``assume`` always terminate, so their rule
constructors already produce ``terminating=True`` triples; Seq/Choice/
Exist/Cons propagate the flag.
"""

from ..assertions.sugar import box, low_pred
from ..assertions.syntax import (
    HLit,
    HLog,
    SAnd,
    SynAssertion,
    forall_s,
    pred_to_hyper,
    prog_to_hyper,
)
from ..errors import ProofError, SideConditionError
from ..lang.analysis import written_vars
from ..lang.expr import as_bexpr, as_expr
from ..lang.sugar import while_loop
from .judgment import ProofNode, Triple, require, require_match


def rule_frame(proof, frame):
    """Frame (Fig. 14): ``⊢⇓{P ∧ F} C {Q ∧ F}`` for any syntactic ``F``
    with ``wr(C) ∩ fv(F) = ∅`` — existentials included, because the
    premise guarantees executions do not vanish."""
    require(
        proof.triple.terminating,
        "Frame: the premise must be a terminating triple (⊢⇓); "
        "use FrameSafe for plain triples",
    )
    require(isinstance(frame, SynAssertion), "Frame: frame must be syntactic")
    overlap = written_vars(proof.command) & frame.free_prog_vars()
    if overlap:
        raise SideConditionError(
            "Frame: frame reads variables written by C: %s" % sorted(overlap)
        )
    pre = proof.pre & frame
    post = proof.post & frame
    return ProofNode(
        "Frame", Triple(pre, proof.command, post, terminating=True), (proof,)
    )


def _variant_eq_tag(variant, tag_log, state="φv"):
    """``□(e = t^L)`` — every state's variant equals its logical tag."""
    return forall_s(state, prog_to_hyper(variant, state).eq(HLog(state, tag_log)))


def _variant_decreases(variant, tag_log, state="φv"):
    """``□(e ≺ t^L)`` with ``a ≺ b := 0 ≤ a ∧ a < b``."""
    e = prog_to_hyper(variant, state)
    return forall_s(state, SAnd(HLit(0).le(e), e.lt(HLog(state, tag_log))))


def _guard_and_tag(cond, variant, tag_log, state="φv"):
    """``□(b ∧ e = t^L)``."""
    e = prog_to_hyper(variant, state)
    return forall_s(
        state, SAnd(pred_to_hyper(cond, state), e.eq(HLog(state, tag_log)))
    )


def while_sync_term_body_pre(invariant, cond, variant, tag_log):
    """The body-premise precondition ``I ∧ □(b ∧ e = t^L)``."""
    return invariant & _guard_and_tag(as_bexpr(cond), as_expr(variant), tag_log)


def while_sync_term_body_post(invariant, cond, variant, tag_log):
    """The body-premise postcondition ``I ∧ low(b) ∧ □(e ≺ t^L)``."""
    return (
        invariant
        & low_pred(as_bexpr(cond))
        & _variant_decreases(as_expr(variant), tag_log)
    )


def rule_while_sync_term(invariant, cond, body_proof, variant, tag_log):
    """WhileSyncTerm (Fig. 14)::

        ⊢⇓ {I ∧ □(b ∧ e = t^L)} C {I ∧ low(b) ∧ □(e ≺ t^L)}
        ≺ well-founded      t^L ∉ fv(I)
        ---------------------------------------------------
        ⊢⇓ {I ∧ low(b)} while (b) {C} {I ∧ □(!b)}

    No ``emp`` disjunct: the variant forces termination, so the rule can
    prove ∃⁺∀*-postconditions through loops.  ``≺`` is fixed to ``<`` on
    the naturals (well-founded); ``t^L`` is the logical variable that
    snapshots the variant at the top of each iteration.
    """
    cond = as_bexpr(cond)
    variant = as_expr(variant)
    require(
        body_proof.triple.terminating,
        "WhileSyncTerm: the body premise must be a terminating triple",
    )
    if isinstance(invariant, SynAssertion):
        if tag_log in frozenset(v for _, v in invariant.log_lookups()):
            raise SideConditionError(
                "WhileSyncTerm: invariant mentions the variant tag %r" % tag_log
            )
    require_match(
        body_proof.pre,
        while_sync_term_body_pre(invariant, cond, variant, tag_log),
        "WhileSyncTerm body pre",
    )
    require_match(
        body_proof.post,
        while_sync_term_body_post(invariant, cond, variant, tag_log),
        "WhileSyncTerm body post",
    )
    pre = invariant & low_pred(cond)
    post = invariant & box(cond.negate())
    triple = Triple(pre, while_loop(cond, body_proof.command), post, terminating=True)
    return ProofNode("WhileSyncTerm", triple, (body_proof,))


def assert_terminating(proof):
    """Raise unless the proof concludes a terminating triple.

    Helper for callers composing App. E reasoning.
    """
    if not proof.triple.terminating:
        raise ProofError(
            "expected a terminating (⊢⇓) proof, got a plain one for %s"
            % proof.triple
        )
    return proof
