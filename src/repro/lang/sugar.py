"""Desugarings of deterministic control flow (Sect. 3.1).

The paper defines::

    if (b) { C1 } else { C2 }  :=  (assume b; C1) + (assume !b; C2)
    if (b) { C }               :=  (assume b; C) + (assume !b)
    while (b) { C }            :=  (assume b; C)*; assume !b
    x := randIntBounded(a, b)  :=  x := nonDet(); assume a <= x <= b

Loop rules (Fig. 5) are stated for ``while``; :func:`match_while` recovers
the guard and body from the desugared tree so proofs can pattern-match.
"""

from .ast import Assume, Choice, Havoc, Iter, Seq
from .expr import BAnd, as_bexpr, as_expr, V


def if_then_else(cond, then_branch, else_branch):
    """``if (cond) { then_branch } else { else_branch }``."""
    cond = as_bexpr(cond)
    return Choice(
        Seq(Assume(cond), then_branch),
        Seq(Assume(cond.negate()), else_branch),
    )


def if_then(cond, body):
    """``if (cond) { body }`` (no else branch)."""
    cond = as_bexpr(cond)
    return Choice(Seq(Assume(cond), body), Assume(cond.negate()))


def while_loop(cond, body):
    """``while (cond) { body }``."""
    cond = as_bexpr(cond)
    return Seq(Iter(Seq(Assume(cond), body)), Assume(cond.negate()))


def rand_int_bounded(var, lo, hi):
    """``var := randIntBounded(lo, hi)`` — uniform choice in ``[lo, hi]``."""
    lo = as_expr(lo)
    hi = as_expr(hi)
    x = V(var)
    return Seq(Havoc(var), Assume(BAnd(lo.le(x), x.le(hi))))


def match_while(command):
    """Recover ``(guard, body)`` from a desugared while loop.

    Returns ``None`` when ``command`` does not have the exact shape
    ``(assume b; C)*; assume !b``.
    """
    if not isinstance(command, Seq):
        return None
    loop, exit_assume = command.first, command.second
    if not isinstance(loop, Iter) or not isinstance(exit_assume, Assume):
        return None
    inner = loop.body
    if not isinstance(inner, Seq) or not isinstance(inner.first, Assume):
        return None
    guard = inner.first.cond
    if exit_assume.cond != guard.negate():
        return None
    return guard, inner.second


def match_if_then_else(command):
    """Recover ``(guard, then_branch, else_branch)`` from a desugared if.

    Returns ``None`` when ``command`` does not have the exact shape
    ``(assume b; C1) + (assume !b; C2)``.
    """
    if not isinstance(command, Choice):
        return None
    left, right = command.left, command.right
    if not (isinstance(left, Seq) and isinstance(left.first, Assume)):
        return None
    if not (isinstance(right, Seq) and isinstance(right.first, Assume)):
        return None
    guard = left.first.cond
    if right.first.cond != guard.negate():
        return None
    return guard, left.second, right.second
