"""Functional hyperproperties and App. B quantitative information flow."""

import math

import pytest

from repro.checker import Universe, small_universe
from repro.hyperprops import (
    has_minimum_direct,
    is_deterministic,
    is_monotonic,
    leakage_table,
    min_capacity_bits,
    output_values,
    qif_triples_hold,
    satisfies_determinism_triple,
    satisfies_minimum_triple,
    satisfies_monotonicity_triple,
    shannon_entropy_bits,
)
from repro.lang import parse_command
from repro.values import IntRange

from tests.paper_programs import c_l


class TestDeterminism:
    def test_direct_and_triple_agree(self):
        uni = small_universe(["x"], 0, 2)
        cases = {
            "x := 1": True,
            "x := x": True,
            "x := nonDet()": False,
            "assume x > 0": False,  # drops executions → not det-preserving
            "if (x > 0) { x := 1 } else { x := 2 }": True,
        }
        for text, expected in cases.items():
            cmd = parse_command(text)
            assert is_deterministic(cmd, uni) == expected, text
            assert satisfies_determinism_triple(cmd, uni) == expected, text


class TestMonotonicity:
    def test_direct(self):
        uni = small_universe(["x", "y"], 0, 2)
        assert is_monotonic(parse_command("y := x"), "x", "y", uni)
        assert is_monotonic(parse_command("y := min(x + 1, 2)"), "x", "y", uni)
        assert not is_monotonic(parse_command("y := 2 - x"), "x", "y", uni)

    def test_triple(self):
        uni = Universe(
            ["x", "y"], IntRange(0, 1), lvars=["t"], lvar_domain=IntRange(1, 2)
        )
        assert satisfies_monotonicity_triple(parse_command("y := x"), "x", "y", uni)
        assert not satisfies_monotonicity_triple(
            parse_command("y := 1 - x"), "x", "y", uni
        )


class TestMinimum:
    def test_direct(self):
        uni = small_universe(["x"], 0, 2)
        assert has_minimum_direct(parse_command("x := randInt(1, 2)"), "x", uni)

    def test_triple(self):
        uni = small_universe(["x"], 0, 2)
        assert satisfies_minimum_triple(parse_command("x := randInt(1, 2)"), "x", uni)
        # a command that can drop all executions has no minimal state
        assert not satisfies_minimum_triple(parse_command("assume x > 5"), "x", uni)


class TestQuantitative:
    """App. B / Fig. 10: the bounded-sum loop leaks through |outputs|."""

    def setup_method(self):
        self.uni = Universe(["h", "l", "o", "i", "r"], IntRange(0, 2))

    def test_output_counts_match_paper(self):
        """For low input l = v (h ranging over the domain), o takes
        exactly v+1 values — the App. B count."""
        cmd = c_l()
        for v in (0, 1, 2):
            outs = output_values(cmd, self.uni, "o", {"l": v})
            assert outs == frozenset(range(v + 1))

    def test_output_bounded_by_h(self):
        """The leak: observing o teaches h >= o."""
        cmd = c_l()
        for h in (0, 1, 2):
            outs = output_values(cmd, self.uni, "o", {"h": h})
            assert all(o <= h for o in outs)

    def test_min_capacity(self):
        cmd = c_l()
        bits = min_capacity_bits(cmd, self.uni, "o", {"l": 2})
        assert bits == pytest.approx(math.log2(3))
        assert min_capacity_bits(cmd, self.uni, "o", {"l": 0}) == 0.0

    def test_shannon_entropy_bounded_by_min_capacity(self):
        cmd = c_l()
        for v in (0, 1, 2):
            fixed = {"l": v}
            ent = shannon_entropy_bits(cmd, self.uni, "o", fixed)
            cap = min_capacity_bits(cmd, self.uni, "o", fixed)
            assert ent <= cap + 1e-9

    def test_qif_triples(self):
        """The App. B hyper-triples: ≤ v+1 outputs (problem 1) and
        = v+1 outputs (problem 2), for fixed low input v."""
        cmd = c_l()
        at_most, exactly = qif_triples_hold(cmd, self.uni, "o", "l", "h", 1)
        assert at_most
        assert exactly

    def test_leakage_table_shape(self):
        rows = leakage_table(c_l(), self.uni, "o", "l", "h")
        assert len(rows) == 3
        # more low budget -> at least as many outputs
        counts = [r[1] for r in rows]
        assert counts == sorted(counts)
