"""E11 — Fig. 6: GNI of the looped one-time pad via WhileSync.

Fig. 6's program pads the prefix sums of a secret list; its essence is a
public-length loop whose every round re-pads the secret, with the natural
synchronized invariant

    I = ∀⟨φ1⟩,⟨φ2⟩. φ1(i) = φ2(i) ∧ (∃⟨φ⟩. φ(h) = φ1(h) ∧ φ(l) = φ2(l)).

We run the scalar shrink (one pad round, xor over {0,1}) through the
WhileSync rule; the body premise is discharged by the oracle on bounded
sets (the recorded assumption plays the role of an SMT timeout budget).

Expected: the rule applies, the conclusion entails GNI, and the whole
loop satisfies GNI semantically."""

from repro.assertions import (
    EntailmentOracle,
    SAnd,
    exists_s,
    forall_s,
    gni,
    pv,
)
from repro.checker import Universe, check_triple
from repro.lang import parse_bexpr, parse_command
from repro.logic import rule_while_sync, semantic_axiom, while_sync_body_pre
from repro.values import IntRange


def setup():
    uni = Universe(["h", "l", "k", "i"], IntRange(0, 1))
    cond = parse_bexpr("i < 1")
    body = parse_command("k := nonDet(); l := h xor k; i := i + 1")
    witness = exists_s(
        "φ", SAnd(pv("φ", "h").eq(pv("φ1", "h")), pv("φ", "l").eq(pv("φ2", "l")))
    )
    inv = forall_s("φ1", forall_s("φ2", SAnd(pv("φ1", "i").eq(pv("φ2", "i")), witness)))
    return uni, cond, body, inv


def test_fig6_while_sync_gni(benchmark):
    uni, cond, body, inv = setup()
    oracle = EntailmentOracle(uni.ext_states(), uni.domain, max_size=3)

    def run():
        body_proof = semantic_axiom(
            while_sync_body_pre(inv, cond), body, inv, uni, max_size=3
        )
        return rule_while_sync(inv, cond, body_proof, oracle)

    proof = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nWhileSync conclusion: %s" % (proof.triple,))
    # the conclusion entails the GNI postcondition
    assert oracle.entails(proof.post, gni("h", "l"))
    # and semantically the loop satisfies GNI end-to-end
    result = check_triple(proof.pre, proof.command, gni("h", "l"), uni, max_size=3)
    assert result.valid


def test_fig6_whole_loop_gni_semantic(benchmark):
    """The Fig. 6 loop (two rounds, running sum) satisfies GNI directly.

    The paper's precondition makes the list length public; here the
    length is the constant 2, so all executions are synchronized just as
    Fig. 6 requires."""
    from repro.hyperprops import satisfies_gni_direct

    uni = Universe(["h", "l", "s", "k", "i"], IntRange(0, 1))
    program = parse_command(
        """
        s := 0;
        l := 0;
        i := 0;
        while (i < 2) {
            s := s xor h;
            k := nonDet();
            l := s xor k;
            i := i + 1
        }
        """
    )

    def run():
        return satisfies_gni_direct(program, uni, "l", "h")

    ok = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFig. 6 loop satisfies GNI (direct check over 64 inputs):", ok)
    assert ok
