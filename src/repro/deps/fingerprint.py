"""Stable Merkle-style content hashes for syntax trees and contexts.

Every cache in the system keys artifacts by *whole-task identity*
(structural dataclass hashes in-process, sha256 of the full wire
document on disk), so the dominant CI-at-scale workload — "program
changed slightly, re-verify the suite" — pays a full recompute even
though almost every subterm survived the edit.  A *fingerprint* is the
missing primitive: a content hash computed bottom-up over a subtree, so

- equal subtrees have equal fingerprints no matter how, where or in
  what order they were constructed (parsed, sugar-built, unpickled,
  regenerated in a worker process);
- an edit to any node changes the fingerprint of exactly the *cone
  above it* — the edited node and its ancestors — and nothing else;
- the derivation never consults ``id()`` or Python ``hash()`` (which is
  ``PYTHONHASHSEED``-perturbed for strings), so fingerprints are stable
  across process restarts, machines and hash seeds, which is what lets
  the on-disk :class:`~repro.serve.store.ResultStore` and cross-process
  shard workers agree on keys.

:func:`fingerprint` handles the library's syntactic universe —
commands, program expressions, hyper-expressions, Def. 9 assertions,
tasks, domains — via one generic walk: frozen dataclasses hash as
``(class, field fingerprints)``, containers by their canonicalized
elements, primitives by tagged bytes.  Semantic assertions wrapping
Python callables have no stable content encoding and raise
:class:`FingerprintError`; callers fall back to today's object keys.

:func:`subtree_fingerprints` returns the fingerprint of every composite
node in a tree — the *dependency set* a derived artifact records in the
:class:`~repro.deps.graph.DependencyGraph` so that an edit invalidates
exactly the artifacts whose cone contains the changed subtree.

Both walks are memoized per node (structural keys, so equal subtrees
share one entry) in module-level tables — like the compile layer's
:func:`~repro.compile.cache.default_cache`, the memo is a process-wide
amortizer, not a correctness mechanism.
"""

import hashlib
from dataclasses import fields, is_dataclass

from ..errors import ReproError
from ..values import Domain


class FingerprintError(ReproError):
    """Raised for objects with no stable content encoding (callables,
    semantic assertions, open resources)."""


class Fingerprint(str):
    """A sha256-hex content hash, distinguishable from plain strings.

    Being a ``str`` subclass it hashes, sorts, pickles and
    JSON-serializes like the hex digest it is; being a distinct *type*
    lets cache keys mix fingerprints with ordinary string fields (kind
    tags, method names) without ambiguity.
    """

    __slots__ = ()

    def __repr__(self):
        return "Fingerprint('%s…')" % self[:12]


#: node -> Fingerprint (structural keys; unhashable nodes bypass).
_FP_MEMO = {}
#: node -> frozenset of composite-subtree fingerprints.
_SUBTREE_MEMO = {}


def _digest(tag, parts):
    """sha256 over ``tag(part,part,...)`` — the one Merkle combiner."""
    h = hashlib.sha256()
    h.update(tag.encode("utf-8"))
    h.update(b"(")
    for part in parts:
        h.update(part.encode("ascii"))
        h.update(b",")
    h.update(b")")
    return Fingerprint(h.hexdigest())


def _primitive_digest(obj):
    """Tagged digest of a primitive, or ``None`` if not primitive.

    ``bool`` is checked before ``int`` (it subclasses it) and every tag
    is distinct, so ``1``, ``1.0``, ``True`` and ``"1"`` all fingerprint
    differently.
    """
    if obj is None:
        return _digest("none", ())
    if isinstance(obj, bool):
        return _digest("bool", ("1" if obj else "0",))
    if isinstance(obj, int):
        return _digest("int", (str(obj),))
    if isinstance(obj, float):
        return _digest("float", (repr(obj),))
    if isinstance(obj, str):
        return _digest("str", (obj.encode("utf-8").hex(),))
    if isinstance(obj, bytes):
        return _digest("bytes", (obj.hex(),))
    return None


def fingerprint(obj):
    """The stable content hash of one (sub)tree → :class:`Fingerprint`.

    Total on commands, expressions, syntactic assertions, tasks, frozen
    config dataclasses, domains, and containers/primitives thereof.
    Raises :class:`FingerprintError` for anything whose content cannot
    be encoded stably (callables, semantic assertions, arbitrary
    objects).
    """
    if isinstance(obj, Fingerprint):
        return obj
    digest = _primitive_digest(obj)
    if digest is not None:
        return digest
    try:
        cached = _FP_MEMO.get(obj)
    except TypeError:
        cached = None
        hashable = False
    else:
        hashable = True
    if cached is not None:
        return cached
    if is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        parts = [fingerprint(getattr(obj, f.name)) for f in fields(obj)]
        digest = _digest("dc:%s.%s" % (cls.__module__, cls.__qualname__), parts)
    elif isinstance(obj, Domain):
        # domains are plain classes with structural equality; their
        # content is the name plus the ordered value tuple
        digest = _digest(
            "domain:%s" % obj.name, [fingerprint(v) for v in obj.values]
        )
    elif isinstance(obj, (tuple, list)):
        digest = _digest("seq", [fingerprint(v) for v in obj])
    elif isinstance(obj, (frozenset, set)):
        digest = _digest("set", sorted(fingerprint(v) for v in obj))
    elif isinstance(obj, dict):
        digest = _digest(
            "map",
            sorted(fingerprint(k) + ":" + fingerprint(v) for k, v in obj.items()),
        )
    else:
        raise FingerprintError(
            "cannot fingerprint %s objects (no stable content encoding): %r"
            % (type(obj).__name__, obj)
        )
    if hashable:
        _FP_MEMO[obj] = digest
    return digest


def fingerprintable(obj):
    """Whether :func:`fingerprint` accepts ``obj`` (no exception probe
    needed by callers that just want the fallback path)."""
    try:
        fingerprint(obj)
    except FingerprintError:
        return False
    return True


def subtree_fingerprints(obj):
    """Fingerprints of every *composite* node in ``obj``'s tree.

    Composite means dataclass nodes and domains — the things an edit
    script can replace; containers and primitives are traversed but not
    collected (they are not edit targets, and collecting every literal
    would bloat dependency sets without sharpening invalidation).
    Raises :class:`FingerprintError` exactly when :func:`fingerprint`
    does.
    """
    try:
        cached = _SUBTREE_MEMO.get(obj)
    except TypeError:
        cached = None
        hashable = False
    else:
        hashable = True
    if cached is not None:
        return cached
    out = set()
    if is_dataclass(obj) and not isinstance(obj, type):
        out.add(fingerprint(obj))
        for f in fields(obj):
            out |= subtree_fingerprints(getattr(obj, f.name))
    elif isinstance(obj, Domain):
        out.add(fingerprint(obj))
    elif isinstance(obj, (tuple, list, frozenset, set)):
        for v in obj:
            out |= subtree_fingerprints(v)
    elif isinstance(obj, dict):
        for k, v in obj.items():
            out |= subtree_fingerprints(k)
            out |= subtree_fingerprints(v)
    else:
        fingerprint(obj)  # raises FingerprintError on non-primitives
    result = frozenset(out)
    if hashable:
        _SUBTREE_MEMO[obj] = result
    return result


def combine(*parts):
    """One fingerprint from several (e.g. task content + context)."""
    return _digest("combine", [fingerprint(p) for p in parts])


def context_fingerprint(context):
    """The fingerprint of a JSON-safe semantic-context mapping.

    Dict insertion order never matters (maps hash by sorted entries);
    any semantic difference — domain bounds, entailment method, oracle
    caps, backend chain, budgets — changes the digest.
    """
    return fingerprint(dict(context or {}))


def task_fingerprint(task, context=None):
    """The content address of one task under one semantic context.

    ``task`` is a :class:`~repro.api.task.VerificationTask` (a frozen
    dataclass, so the task's own fingerprint covers pre, command, post,
    invariant and label); ``context`` is the session-side configuration
    the verdict additionally depends on.  Raises
    :class:`FingerprintError` for tasks with semantic assertions.
    """
    return combine(fingerprint(task), context_fingerprint(context))


def task_dependencies(task):
    """The dependency set of one task: every composite subtree of its
    triple components (the task node itself included)."""
    return subtree_fingerprints(task)


def clear_memo():
    """Drop the process-wide memo tables (tests; never required for
    correctness — fingerprints are pure functions of content)."""
    _FP_MEMO.clear()
    _SUBTREE_MEMO.clear()
