"""Exception hierarchy for the Hyper Hoare Logic library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine Python bugs.
"""


class ReproError(Exception):
    """Base class of all library errors."""


class ParseError(ReproError):
    """Raised by the concrete-syntax parser on malformed input."""

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = "%s (line %d, column %d)" % (message, line, col)
        super().__init__(message)


class EvaluationError(ReproError):
    """Raised when an expression cannot be evaluated in a given state."""


class DomainError(ReproError):
    """Raised when a value falls outside the declared finite domain."""


class ProofError(ReproError):
    """Raised when an inference-rule application is ill-formed.

    A :class:`ProofError` means the *proof* is wrong (premises have the
    wrong shape, a side condition fails), not that the triple is invalid.
    """


class SideConditionError(ProofError):
    """A rule's side condition was violated (e.g. a free-variable check)."""


class EntailmentError(ProofError):
    """An entailment required by a rule (e.g. Cons) does not hold."""


class SolverError(ReproError):
    """Raised by the SAT backend on malformed input or resource limits."""
