#!/usr/bin/env python3
"""Disproving specifications — bug-finding without false positives
(Thm. 5, Sect. 3.5) plus refinement checking via product programs
(Example 3).

Run:  python examples/disprove_bugs.py
"""

from repro.assertions import TRUE_H, box, not_emp_s, pretty_assertion
from repro.checker import check_triple, small_universe, Universe
from repro.hyperprops import refines_direct, refines_via_hyper_triple
from repro.lang import parse_command, pretty
from repro.lang.expr import V
from repro.logic import disprove_triple, negate_assertion
from repro.values import IntRange


def buggy_spec():
    print("=" * 60)
    print("1. disproving a functional spec (Thm. 5)")
    # the 'spec': after the program, x is always 0.  The program has a bug.
    command = parse_command("if (y > 0) { x := 0 } else { x := y + 1 }")
    universe = small_universe(["x", "y"], 0, 1)
    spec = box(V("x").eq(0))
    print("  program:\n    " + pretty(command).replace("\n", "\n    "))
    print("  claimed: {⊤} C {%s}" % pretty_assertion(spec))
    disproof = disprove_triple(TRUE_H, command, spec, universe, construct_proof=True)
    print("  INVALID — Thm. 5 disproof found:")
    for phi in sorted(disproof.witness, key=repr):
        print("    refuting initial state:", dict(phi.prog.items()))
    print("  the disproof is itself a provable triple {P'} C {¬Q}:")
    print("    derivation size:", disproof.proof.size(), "rule applications")
    print("    rules:", dict(sorted(disproof.proof.rules_used().items())))


def hl_contrast():
    print("=" * 60)
    print("2. what classical HL cannot do (Sect. 3.5)")
    universe = small_universe(["x"], 0, 1)
    command = parse_command("x := nonDet()")
    claim = box(V("x").ge(1))
    print("  claim: {⊤} x := nonDet() {x ≥ 1}   — false, but HL cannot")
    print("  exhibit the offending execution; HHL proves its negation:")
    valid = check_triple(not_emp_s, command, negate_assertion(claim), universe)
    print("  {∃⟨φ⟩.⊤} x := nonDet() {¬(∀⟨φ⟩. φ(x) ≥ 1)} valid:", valid.valid)


def refinement():
    print("=" * 60)
    print("3. refinement via the Example 3 product program")
    uni = Universe(["x", "t"], IntRange(0, 1))
    abstract = parse_command("x := nonDet()")
    good = parse_command("x := 0")
    bad = parse_command("x := x")  # also refines nonDet(); try a non-refinement:
    non_refinement = (parse_command("x := nonDet()"), parse_command("x := 0"))
    for concrete, name in ((good, "x := 0"), (bad, "x := x")):
        direct = refines_direct(concrete, abstract, uni)
        via = refines_via_hyper_triple(concrete, abstract, uni)
        print("  %-12s refines x := nonDet():  direct=%s  product-triple=%s"
              % (name, direct, via))
    concrete, abstract2 = non_refinement
    direct = refines_direct(concrete, abstract2, uni)
    via = refines_via_hyper_triple(concrete, abstract2, uni)
    print("  %-12s refines x := 0:          direct=%s  product-triple=%s"
          % ("x := nonDet()", direct, via))


def main():
    buggy_spec()
    hl_contrast()
    refinement()


if __name__ == "__main__":
    main()
