"""Benchmark harness configuration: make repo-root imports available."""

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if ROOT not in sys.path:
    sys.path.insert(0, ROOT)
