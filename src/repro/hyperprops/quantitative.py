"""Quantitative information flow (App. B).

Bounding the number of distinct outputs for a fixed low input is a
hyperproperty over an *unbounded* number of executions — not 𝑘-safety for
any 𝑘 — and exactly bounding it (problem (2) of App. B) is not even
hypersafety; it needs assertions about the set itself (cardinality),
which Hyper Hoare Logic's set-level assertions express directly.

This module provides the counting machinery (output sets, min-capacity,
Shannon entropy) and the App. B hyper-triples.
"""

import math
from itertools import product

from ..assertions.semantic import SemAssertion
from ..checker.validity import check_triple
from ..semantics.bigstep import post_states


def output_values(command, universe, out_var, fixed=()):
    """All values of ``out_var`` reachable from inputs matching ``fixed``.

    ``fixed`` maps input variables to required values (e.g. the low input);
    all other inputs range over the universe.
    """
    fixed = dict(fixed)
    out = set()
    for sigma in universe.program_states():
        if any(sigma[var] != value for var, value in fixed.items()):
            continue
        for final in post_states(command, sigma, universe.domain):
            out.add(final[out_var])
    return frozenset(out)


def min_capacity_bits(command, universe, out_var, fixed=()):
    """Min-capacity leakage: ``log2`` of the number of distinct outputs
    (Smith 2009; Assaf et al. 2017)."""
    count = len(output_values(command, universe, out_var, fixed))
    return math.log2(count) if count else 0.0


def shannon_entropy_bits(command, universe, out_var, fixed=()):
    """Shannon entropy of the output under uniformly distributed inputs
    and uniformly resolved non-determinism."""
    fixed = dict(fixed)
    weights = {}
    for sigma in universe.program_states():
        if any(sigma[var] != value for var, value in fixed.items()):
            continue
        finals = post_states(command, sigma, universe.domain)
        if not finals:
            continue
        share = 1.0 / len(finals)
        for final in finals:
            weights[final[out_var]] = weights.get(final[out_var], 0.0) + share
    total = sum(weights.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for w in weights.values():
        p = w / total
        entropy -= p * math.log2(p)
    return entropy


def output_count_at_most(out_var, bound_fn):
    """The App. B upper-bound hyper-assertion::

        λS. |{φ(o) | φ ∈ S}| ≤ bound

    ``bound_fn`` receives the set and returns the bound (e.g. ``v + 1``
    where ``v`` is read off the common low input)."""

    def fn(states):
        outs = {phi.prog[out_var] for phi in states}
        return len(outs) <= bound_fn(states)

    return SemAssertion(fn, "|outputs| ≤ bound")


def output_count_exactly(out_var, bound_fn):
    """The App. B exact-count hyper-assertion (problem (2)):
    ``λS. |{φ(o) | φ ∈ S}| = bound`` — beyond hypersafety."""

    def fn(states):
        outs = {phi.prog[out_var] for phi in states}
        return len(outs) == bound_fn(states)

    return SemAssertion(fn, "|outputs| = bound")


def qif_triples_hold(command, universe, out_var, low_var, high_var, low_value):
    """Check both App. B triples for a fixed low input ``v``::

        {□(h ≥ 0 ∧ l = v)} C {λS. |{φ(o) | φ∈S}| ≤ v+1}   (problem 1)
        {□(h ≥ 0 ∧ l = v)} C {λS. |{φ(o) | φ∈S}| = v+1}   (problem 2)

    The precondition pins the full input set: we use the *exact* set of
    extended states with ``l = v`` and ``h ≥ 0`` so the existential
    lower bound is meaningful.  Returns ``(at_most_ok, exactly_ok)``.
    """
    from ..assertions.semantic import EqualsSet
    from ..semantics.state import ExtState

    initial = frozenset(
        ExtState(log, sigma)
        for log in universe.logical_states()
        for sigma in universe.program_states()
        if sigma[low_var] == low_value and sigma[high_var] >= 0
    )
    pre = EqualsSet(initial)
    at_most = output_count_at_most(out_var, lambda S: low_value + 1)
    exactly = output_count_exactly(out_var, lambda S: low_value + 1)
    return (
        check_triple(pre, command, at_most, universe).valid,
        check_triple(pre, command, exactly, universe).valid,
    )


def leakage_table(command, universe, out_var, low_var, high_var):
    """Rows ``(v, #outputs, min-capacity bits, Shannon bits)`` per low
    input value — the data behind the App. B discussion."""
    rows = []
    for v in universe.domain:
        outs = output_values(command, universe, out_var, {low_var: v})
        rows.append(
            (
                v,
                len(outs),
                min_capacity_bits(command, universe, out_var, {low_var: v}),
                shannon_entropy_bits(command, universe, out_var, {low_var: v}),
            )
        )
    return rows
