"""Structural fingerprints and dependency-cone invalidation.

The incremental re-verification subsystem (ROADMAP item 4): stable
Merkle-style content hashes for every command/expression/assertion
subtree (:mod:`~repro.deps.fingerprint`) and a per-artifact dependency
index (:mod:`~repro.deps.graph`) that lets an edit invalidate exactly
the cone above the changed subtree.  The session caches
(:class:`~repro.compile.cache.CompileCache`,
:class:`~repro.checker.engine.ImageCache`, the entailment memo, the
result ledger behind :meth:`~repro.api.session.Session.reverify`) key
their artifacts by these fingerprints.
"""

from .fingerprint import (
    Fingerprint,
    FingerprintError,
    combine,
    context_fingerprint,
    fingerprint,
    fingerprintable,
    subtree_fingerprints,
    task_dependencies,
    task_fingerprint,
)
from .graph import DependencyGraph

__all__ = [
    "DependencyGraph",
    "Fingerprint",
    "FingerprintError",
    "combine",
    "context_fingerprint",
    "fingerprint",
    "fingerprintable",
    "subtree_fingerprints",
    "task_dependencies",
    "task_fingerprint",
]
