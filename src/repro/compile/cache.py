"""The shared memo behind the compile-once evaluation core.

Compilation is cheap but not free (one tree walk per artifact), and the
hot paths — the checker engine's ``2**n`` enumeration, entailment
queries, fuzz trials — ask for the *same* artifacts over and over:
commands and assertions hash structurally, so a :class:`CompileCache`
turns every repeat compilation into a dictionary hit.

A :class:`~repro.api.session.Session` owns one cache alongside its
:class:`~repro.checker.engine.ImageCache`, so compiled artifacts persist
across tasks in a batch and across ``verify_many`` threads.  Code
without a session (``post_states``, module-level entailment helpers)
falls back to the module-wide :func:`default_cache`.

Keys are ``(kind, node, ...)`` tuples.  Syntactic nodes (commands,
expressions, Def. 9 assertions) are frozen dataclasses and hash
structurally, so equal trees share one artifact; semantic assertions
hash by identity, which still de-duplicates the repeated queries a
session issues against the same assertion object.  Unhashable keys
bypass the cache entirely (the caller just compiles fresh).
"""

import threading

_MISS = object()


class CompileCache:
    """A thread-safe memo of compiled artifacts.

    Computation happens outside the lock, so a race costs at most one
    duplicated compilation, never a wrong entry.  ``fallbacks`` counts,
    per reason string, how many cached assertion evaluators could not be
    made incremental — the "never silent" record of
    :func:`~repro.compile.assertion.compile_assertion` fallbacks.
    """

    def __init__(self):
        self._table = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.fallbacks = {}

    def get_or_build(self, key, build):
        """The artifact for ``key``, compiling via ``build()`` at most once
        (modulo benign races).  Unhashable keys compile fresh every call."""
        try:
            hash(key)
        except TypeError:
            return build()
        with self._lock:
            artifact = self._table.get(key, _MISS)
            if artifact is not _MISS:
                self.hits += 1
                return artifact
        artifact = build()
        with self._lock:
            existing = self._table.get(key, _MISS)
            if existing is not _MISS:
                # lost the race: keep the first artifact so callers that
                # already hold it stay consistent with future lookups
                self.hits += 1
                return existing
            self._table[key] = artifact
            self.misses += 1
        return artifact

    def record_fallback(self, reasons):
        """Count each fallback reason (called once per compiled assertion)."""
        if not reasons:
            return
        with self._lock:
            for reason in reasons:
                self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def stats(self):
        """``{"hits", "misses", "size", "fallbacks"}`` (fallbacks by reason)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._table),
                "fallbacks": dict(self.fallbacks),
            }

    def clear(self):
        with self._lock:
            self._table.clear()
            self.hits = 0
            self.misses = 0
            self.fallbacks = {}

    def __len__(self):
        with self._lock:
            return len(self._table)

    def __repr__(self):
        return "CompileCache(%d artifacts)" % len(self)


_DEFAULT = CompileCache()


def default_cache():
    """The module-wide cache used by callers without a session."""
    return _DEFAULT
