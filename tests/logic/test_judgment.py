"""Triples, proof nodes, and the premise-matching relation."""

import pytest

from repro.assertions import (
    AtLeast,
    AtMost,
    BigUnion,
    ContainsState,
    EqualsSet,
    FilterPre,
    NotAssertion,
    OTimes,
    OTimesFamily,
    OTimesTagged,
    PartialEval,
    SubsetOf,
    SupersetOf,
    TRUE_H,
    low,
    not_emp_s,
)
from repro.errors import ProofError
from repro.lang import Skip, parse_command
from repro.lang.expr import V
from repro.logic import ProofNode, Triple, assertions_match
from repro.semantics.state import ExtState, State

PHI = ExtState(State({}), State({"x": 0}))
PHI2 = ExtState(State({}), State({"x": 1}))


class TestTriple:
    def test_str_shows_termination_marker(self):
        plain = Triple(TRUE_H, Skip(), TRUE_H)
        term = Triple(TRUE_H, Skip(), TRUE_H, terminating=True)
        assert "⊢⇓" in str(term)
        assert "⊢⇓" not in str(plain)

    def test_validation(self):
        with pytest.raises(ProofError):
            Triple(TRUE_H, Skip(), 42)


class TestAssertionsMatch:
    def test_identity_always_matches(self):
        assert assertions_match(TRUE_H, TRUE_H)

    def test_syntactic_structural(self):
        assert assertions_match(low("x"), low("x"))
        assert not assertions_match(low("x"), low("y"))

    def test_combinators_recurse(self):
        a = low("x") & TRUE_H
        b = low("x") & TRUE_H
        assert assertions_match(a, b)
        assert assertions_match(low("x") | TRUE_H, low("x") | TRUE_H)
        assert assertions_match(NotAssertion(low("x")), NotAssertion(low("x")))
        assert not assertions_match(low("x") & TRUE_H, low("y") & TRUE_H)

    def test_otimes(self):
        assert assertions_match(
            OTimes(low("x"), not_emp_s), OTimes(low("x"), not_emp_s)
        )
        assert not assertions_match(
            OTimes(low("x"), not_emp_s), OTimes(not_emp_s, low("x"))
        )

    def test_otimes_family_needs_same_callable(self):
        fam = lambda n: low("x")  # noqa: E731
        assert assertions_match(OTimesFamily(fam, 1), OTimesFamily(fam, 1))
        assert not assertions_match(
            OTimesFamily(fam, 1), OTimesFamily(lambda n: low("x"), 1)
        )
        assert not assertions_match(OTimesFamily(fam, 1), OTimesFamily(fam, 2))

    def test_set_pinning_classes(self):
        assert assertions_match(EqualsSet({PHI}), EqualsSet({PHI}))
        assert not assertions_match(EqualsSet({PHI}), EqualsSet({PHI2}))
        assert assertions_match(SubsetOf({PHI}), SubsetOf({PHI}))
        assert not assertions_match(SubsetOf({PHI}), SupersetOf({PHI}))
        assert assertions_match(ContainsState(PHI), ContainsState(PHI))

    def test_filter_pre(self):
        cond = V("x").gt(0)
        assert assertions_match(
            FilterPre(low("x"), cond), FilterPre(low("x"), cond)
        )
        assert not assertions_match(
            FilterPre(low("x"), cond), FilterPre(low("x"), V("x").lt(0))
        )

    def test_partial_eval(self):
        body = low("x")
        assert assertions_match(
            PartialEval(body, {"p": PHI}), PartialEval(body, {"p": PHI})
        )
        assert not assertions_match(
            PartialEval(body, {"p": PHI}), PartialEval(body, {"p": PHI2})
        )

    def test_bounds_and_unions(self):
        assert assertions_match(AtLeast(low("x")), AtLeast(low("x")))
        assert assertions_match(
            AtMost(low("x"), (PHI,)), AtMost(low("x"), (PHI,))
        )
        assert assertions_match(BigUnion(low("x")), BigUnion(low("x")))

    def test_tagged_otimes(self):
        assert assertions_match(
            OTimesTagged(low("x"), TRUE_H, "u"), OTimesTagged(low("x"), TRUE_H, "u")
        )
        assert not assertions_match(
            OTimesTagged(low("x"), TRUE_H, "u"), OTimesTagged(low("x"), TRUE_H, "t")
        )

    def test_semantic_lambdas_only_by_identity(self):
        from repro.assertions import SemAssertion

        a = SemAssertion(lambda s: True, "a")
        b = SemAssertion(lambda s: True, "b")
        assert assertions_match(a, a)
        assert not assertions_match(a, b)


class TestProofNode:
    def test_note_and_tree(self):
        node = ProofNode("Test", Triple(TRUE_H, Skip(), TRUE_H), note="hello")
        assert node.note == "hello"
        assert "Test" in node.tree()

    def test_nested_assumptions(self):
        leaf = ProofNode(
            "Leaf", Triple(TRUE_H, Skip(), TRUE_H), assumptions=("a1",)
        )
        root = ProofNode(
            "Root", Triple(TRUE_H, Skip(), TRUE_H), (leaf,), assumptions=("a0",)
        )
        assert root.all_assumptions() == ("a0", "a1")
