"""Property: the symbolic backend conforms to the enumerating engine.

On every groundable generated trial the one-SAT-call verdict must match
the exhaustive :class:`~repro.checker.engine.CheckerEngine`, and a
symbolic refutation must carry an *independently valid* witness — the
SAT model's set need not equal the engine's size-ordered first witness,
so validity is checked semantically, never by set comparison.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session, SymbolicBackend
from repro.assertions.semantic import TRUE_H, SemAssertion
from repro.assertions.sugar import box, gni, low
from repro.gen.config import FUZZ_CONFIG
from repro.gen.triples import regenerate
from repro.lang.expr import V
from repro.symbolic import fragment_reasons, in_fragment

#: One session for the whole module — trials share the image cache, the
#: same economics the fuzz harness relies on.
SESSION = Session(FUZZ_CONFIG.pvars, lo=FUZZ_CONFIG.lo, hi=FUZZ_CONFIG.hi)
BACKEND = SymbolicBackend()


def assert_conforms(triple):
    """One trial: symbolic verdict + witness vs the exhaustive engine."""
    task = SESSION.task(triple.pre, triple.command, triple.post)
    outcome = BACKEND.attempt(task, SESSION)
    if outcome.verdict is None:
        assert outcome.reason, "undecided without a recorded reason"
        return outcome
    oracle = SESSION.engine.check(triple.pre, triple.command, triple.post)
    assert outcome.verdict == oracle.valid, (
        "symbolic %r vs oracle %r on\n%s"
        % (outcome.verdict, oracle.valid, triple.describe())
    )
    if not outcome.verdict:
        witness = outcome.witness
        domain = SESSION.universe.domain
        assert witness is not None, "refutation without a witness"
        assert triple.pre.holds(witness.pre_set, domain)
        assert SESSION.engine.sem(triple.command, witness.pre_set) == witness.post_set
        assert not triple.post.holds(witness.post_set, domain)
    return outcome


class TestConformance:
    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_symbolic_matches_engine_on_generated_trials(self, seed, index):
        assert_conforms(regenerate(seed, index, FUZZ_CONFIG).triple)

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_loop_trials_conform(self, seed):
        """Loop commands work symbolically: the big-step fixpoint
        computes their images like any other command's."""
        trial = regenerate(seed, 0, FUZZ_CONFIG, straightline_bias=0.0, loop_bias=1.0)
        assert_conforms(trial.triple)

    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_groundable_trials_are_decided(self, seed, index):
        """On the classified fragment the backend never punts: every
        groundable generated trial gets a Proved or Refuted."""
        triple = regenerate(seed, index, FUZZ_CONFIG).triple
        domain = SESSION.universe.domain
        if not (in_fragment(triple.pre, domain) and in_fragment(triple.post, domain)):
            return
        outcome = assert_conforms(triple)
        assert outcome.verdict is not None, (
            "groundable trial left undecided (%s):\n%s"
            % (getattr(outcome, "reason", ""), triple.describe())
        )


class TestHandPickedTriples:
    def test_refutes_leak_with_valid_witness(self):
        task = SESSION.task(low("x"), "x := nonDet()", low("x"))
        outcome = BACKEND.attempt(task, SESSION)
        assert outcome.verdict is False
        witness = outcome.witness
        assert witness is not None
        assert SESSION.engine.sem(task.command, witness.pre_set) == witness.post_set

    def test_proves_constant_assignment(self):
        task = SESSION.task(low("x"), "x := 0", low("x"))
        outcome = BACKEND.attempt(task, SESSION)
        assert outcome.verdict is True
        assert outcome.method == "sat-validity"

    def test_decides_while_loop(self):
        task = SESSION.task(
            "forall <a>. a(x) <= 1", "while (x > 0) { x := x - 1 }",
            "forall <a>. a(x) == 0",
        )
        outcome = BACKEND.attempt(task, SESSION)
        assert outcome.verdict is True


class TestFragmentReasons:
    def test_gni_is_out_of_fragment_with_alternation_reason(self):
        reasons = fragment_reasons(gni("x", "y"), SESSION.universe.domain)
        assert reasons
        assert any("alternating" in reason for reason in reasons)

    def test_semantic_predicate_reason(self):
        opaque = SemAssertion(lambda s, d: True, label="opaque-test")
        reasons = fragment_reasons(opaque, SESSION.universe.domain)
        assert any("opaque semantic predicate" in r for r in reasons)

    def test_true_h_is_out_of_fragment(self):
        reasons = fragment_reasons(TRUE_H, SESSION.universe.domain)
        assert any("constant semantic predicate" in r for r in reasons)

    def test_groundable_assertions_have_no_reasons(self):
        domain = SESSION.universe.domain
        assert in_fragment(low("x"), domain)
        assert in_fragment(low("x") & box(V("y").eq(0)), domain)

    def test_gni_task_is_undecided_with_recorded_reason(self):
        task = SESSION.task(low("x"), "y := nonDet()", gni("y", "x"))
        outcome = BACKEND.attempt(task, SESSION)
        assert outcome.verdict is None
        assert "outside symbolic fragment" in outcome.reason
        assert "alternating" in outcome.reason


class TestChainIntegration:
    def test_default_chain_contains_symbolic(self):
        names = [b.name for b in Session(["x"], lo=0, hi=1).backends]
        assert names == ["syntactic-wp", "loop", "symbolic", "exhaustive"]

    def test_capped_chain_has_no_symbolic_stage(self):
        """``max_set_size`` keeps the documented oracle(≤k) semantics:
        the symbolic stage would silently upgrade them to exact."""
        names = [b.name for b in Session(["x"], lo=0, hi=1, max_set_size=2).backends]
        assert "symbolic" not in names

    def test_out_of_fragment_falls_through_to_oracle(self):
        """A loop (no invariant) with a GNI post reaches the symbolic
        stage — which must punt with a reason — and still gets decided
        by the closing exhaustive oracle."""
        session = Session(["x", "y"], lo=0, hi=1)
        result = session.verify(
            low("x"), "while (y > 0) { y := y - 1 }", gni("y", "x")
        )
        assert result.verdict is not None
        assert result.outcome.backend == "exhaustive"
        symbolic = [o for o in result.outcomes if o.backend == "symbolic"]
        assert symbolic and symbolic[0].reason


class TestCodecRoundTrip:
    def test_symbolic_outcomes_round_trip(self):
        from repro.codec import from_wire

        for triple in (
            (low("x"), "x := 0", low("x")),
            (low("x"), "x := nonDet()", low("x")),
            (low("x"), "y := nonDet()", gni("y", "x")),
        ):
            task = SESSION.task(*triple)
            outcome = BACKEND.attempt(task, SESSION)
            decoded = from_wire(outcome.to_wire())
            assert decoded == outcome
