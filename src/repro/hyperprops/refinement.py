"""Program refinement via product programs (Example 3, App. C.3).

Relational properties relate *different* programs, so they are not
program hyperproperties of either one (Def. 8 fixes a single command).
The paper's recipe: build the product ``(t := 1; C1) + (t := 2; C2)`` and
state the relational property as a hyperproperty of the product.
"""

from ..assertions.semantic import SemAssertion
from ..checker.validity import check_triple
from ..lang.ast import Assign, Choice, Seq
from ..semantics.state import ExtState
from .base import semantics_of


def refines_direct(concrete, abstract, universe):
    """``C2 refines C1``: every pre/post pair of ``C2`` is one of ``C1``."""
    return semantics_of(concrete, universe) <= semantics_of(abstract, universe)


def product_program(c1, c2, tag="t"):
    """The Example 3 product ``(t := 1; C1) + (t := 2; C2)``.

    ``tag`` is a *program* variable recording which branch ran; it must
    not occur in either command.
    """
    return Choice(Seq(Assign(tag, 1), c1), Seq(Assign(tag, 2), c2))


def refinement_post(tag="t"):
    """Example 3's postcondition::

        ∀⟨φ⟩. φ_P(t) = 2 ⇒ ⟨(φ_L, φ_P[t := 1])⟩

    — every final state of the ``C2`` branch also appears as a final
    state of the ``C1`` branch (same logical part, tag rewritten).
    """

    def fn(states):
        for phi in states:
            if phi.prog.get(tag) == 2:
                mirrored = ExtState(phi.log, phi.prog.set(tag, 1))
                if mirrored not in states:
                    return False
        return True

    return SemAssertion(fn, "refinement(t)")


def refines_via_hyper_triple(concrete, abstract, universe, tag="t"):
    """Example 3: decide refinement by checking the product-program
    hyper-triple ``{⊤} (t:=1; C1) + (t:=2; C2) {refinement_post}``.

    The ``⊤`` precondition quantifies over *all* initial sets — in
    particular singletons, which pin the initial state, giving the
    equivalence with :func:`refines_direct` (cross-validated in tests).
    """
    from ..assertions.semantic import TRUE_H

    product = product_program(abstract, concrete, tag)
    post = refinement_post(tag)
    return check_triple(TRUE_H, product, post, universe).valid
