"""Derived hyper-assertion forms used by the inference rules.

These are the semantic constructions that appear in rule conclusions and
preconditions but are not part of the Def. 9 syntax:

- the backward preconditions of the core Assume/Assign/Havoc rules
  (set comprehensions over the post-set, Fig. 2);
- state-indexed families ``∀⟨φ⟩. P_φ`` / ``∃⟨φ⟩. P_φ`` where ``P_φ`` is a
  full hyper-assertion depending on the bound state (Linking, While-∃);
- partial evaluation, which closes a syntactic assertion under concrete
  bindings for some of its state/value variables.
"""

from .base import Assertion


class FilterPre(Assertion):
    """Precondition of the core Assume rule:
    ``λS. P({φ ∈ S | b(φ_P)})`` (Fig. 2)."""

    __slots__ = ("operand", "cond")

    def __init__(self, operand, cond):
        self.operand = operand
        self.cond = cond

    def holds(self, states, domain=None):
        kept = frozenset(phi for phi in states if self.cond.eval(phi.prog))
        return self.operand.holds(kept, domain)

    def describe(self):
        return "λS. P({φ∈S | b}) for P=%s" % self.operand.describe()


class AssignPre(Assertion):
    """Precondition of the core Assign rule:
    ``λS. P({φ | ∃α∈S. φ_L = α_L ∧ φ_P = α_P[x ↦ e(α_P)]})`` (Fig. 2)."""

    __slots__ = ("operand", "var", "expr")

    def __init__(self, operand, var, expr):
        self.operand = operand
        self.var = var
        self.expr = expr

    def holds(self, states, domain=None):
        image = frozenset(
            phi.set_pvar(self.var, self.expr.eval(phi.prog)) for phi in states
        )
        return self.operand.holds(image, domain)

    def describe(self):
        return "λS. P(S[%s:=e]) for P=%s" % (self.var, self.operand.describe())


class HavocPre(Assertion):
    """Precondition of the core Havoc rule:
    ``λS. P({φ | ∃α∈S. ∃v. φ_L = α_L ∧ φ_P = α_P[x ↦ v]})`` (Fig. 2).

    The value ``v`` ranges over the evaluation domain, which is supplied
    at ``holds`` time — the same domain the havoc command executes over.
    """

    __slots__ = ("operand", "var")

    def __init__(self, operand, var):
        self.operand = operand
        self.var = var

    def holds(self, states, domain=None):
        if domain is None:
            raise ValueError("HavocPre needs the value domain")
        image = frozenset(
            phi.set_pvar(self.var, v) for phi in states for v in domain
        )
        return self.operand.holds(image, domain)

    def describe(self):
        return "λS. P(S[%s:=*]) for P=%s" % (self.var, self.operand.describe())


class ForallStateFam(Assertion):
    """``∀⟨φ⟩. P_φ`` where ``P_φ`` is itself a hyper-assertion.

    ``family`` maps a concrete extended state to an :class:`Assertion`.
    Used by the Linking rule (Fig. 11).
    """

    __slots__ = ("family", "label")

    def __init__(self, family, label="∀⟨φ⟩. P_φ"):
        self.family = family
        self.label = label

    def holds(self, states, domain=None):
        states = frozenset(states)
        return all(self.family(phi).holds(states, domain) for phi in states)

    def describe(self):
        return self.label


class ExistsStateFam(Assertion):
    """``∃⟨φ⟩. P_φ`` where ``P_φ`` is itself a hyper-assertion.

    Used by the While-∃ rule (Fig. 5), where the existential witness
    state parameterizes the loop invariant.
    """

    __slots__ = ("family", "label")

    def __init__(self, family, label="∃⟨φ⟩. P_φ"):
        self.family = family
        self.label = label

    def holds(self, states, domain=None):
        states = frozenset(states)
        return any(self.family(phi).holds(states, domain) for phi in states)

    def describe(self):
        return self.label


class PartialEval(Assertion):
    """A syntactic assertion with some state/value variables pre-bound.

    ``sigma_env`` maps state names to concrete extended states and
    ``delta_env`` maps value variables to concrete values; the remaining
    structure is evaluated against the set as usual (Def. 12 with
    non-empty initial environments, as used by the While-∃ premises).
    """

    __slots__ = ("syn", "sigma_env", "delta_env")

    def __init__(self, syn, sigma_env=(), delta_env=()):
        self.syn = syn
        self.sigma_env = dict(sigma_env)
        self.delta_env = dict(delta_env)

    def holds(self, states, domain=None):
        if domain is None:
            raise ValueError("PartialEval needs the value domain")
        return self.syn.eval(
            frozenset(states), dict(self.sigma_env), dict(self.delta_env), domain
        )

    def describe(self):
        return "partial-eval(%d states, %d values bound)" % (
            len(self.sigma_env),
            len(self.delta_env),
        )


class MapPre(Assertion):
    """``λS. P(f(S))`` for an arbitrary set transformer ``f``.

    General escape hatch used by embeddings and tests.
    """

    __slots__ = ("operand", "transform", "label")

    def __init__(self, operand, transform, label="λS. P(f(S))"):
        self.operand = operand
        self.transform = transform
        self.label = label

    def holds(self, states, domain=None):
        return self.operand.holds(frozenset(self.transform(frozenset(states))), domain)

    def describe(self):
        return self.label


class OTimesTagged(Assertion):
    """``A ⊗_{x=1,2} B`` (Notation 1, App. H): the sub-set of states whose
    logical variable ``x`` equals 1 satisfies ``A`` and the sub-set where
    it equals 2 satisfies ``B``."""

    __slots__ = ("left", "right", "tag")

    def __init__(self, left, right, tag):
        self.left = left
        self.right = right
        self.tag = tag

    def holds(self, states, domain=None):
        ones = frozenset(phi for phi in states if phi.log.get(self.tag) == 1)
        twos = frozenset(phi for phi in states if phi.log.get(self.tag) == 2)
        return self.left.holds(ones, domain) and self.right.holds(twos, domain)

    def describe(self):
        return "(%s) ⊗_{%s=1,2} (%s)" % (
            self.left.describe(),
            self.tag,
            self.right.describe(),
        )
