"""The precomputed-image, compiled-evaluation checker engine behind the
Def. 5 oracle.

The naive oracle re-runs ``sem(C, S)`` from scratch for every candidate
initial set ``S``: over a universe of ``n`` extended states that is
``O(2**n)`` big-step executions, each program state re-executed up to
``2**(n-1)`` times.  :class:`CheckerEngine` removes the re-execution —
and, since the compile-once refactor, the re-*evaluation*:

1. every extended state is executed **once** up front into a per-state
   *image* ``image(φ) = {(φ_L, σ') | ⟨C, φ_P⟩ → σ'}``, so ``sem(C, S) =
   ⋃_{φ∈S} image(φ)`` by Lemma 1 (union-distribution); the execution
   itself runs on a fused step function
   (:func:`repro.compile.compile_command`) instead of a per-node tree
   walk;
2. candidate sets are decided by unioning those precomputed images,
   built *incrementally* along the size-ordered subset enumeration (each
   enumeration step extends a prefix union by one image);
3. ``pre``/``post`` are compiled once
   (:func:`repro.compile.compile_assertion`) into incremental
   :class:`~repro.compile.assertion.SetEvaluator` objects whose
   ``push``/``pop`` mirror the same enumeration steps, so each candidate
   set is *decided* in ``O(Δ)`` — the work proportional to the one state
   (and its image) the step added — instead of re-walking the assertion
   over the whole set; assertion forms outside the incremental fragment
   fall back to compiled whole-set evaluation, with the reason recorded
   on the compiled object and the compile cache (never silently);
4. states that can never appear in a precondition-satisfying set are
   pruned up front by a sound syntactic analysis of the precondition
   (:func:`state_prefilter`), shrinking the ``2**n`` base;
5. the per-state executions live in a shareable, thread-safe
   :class:`ImageCache` and the compiled artifacts in a
   :class:`~repro.compile.cache.CompileCache`, both ownable by a
   :class:`~repro.api.session.Session`, so a session re-verifying
   related triples (or a ``verify_many`` thread pool) never re-executes
   a program state or recompiles a tree.

The overall cost drops from the naive ``O(2**n · exec · eval)`` to
``O(n · exec + 2**n · Δ)``, where ``Δ`` is the per-step incremental
work: one image union plus one evaluator push (``O(1)``–``O(|S|)`` body
evaluations depending on the assertion's quantifier depth) — the
pre-compile engine's ``O(2**n · union)`` accounting ignored assertion
evaluation, which re-walked both assertions over every candidate set
and dominated assertion-heavy workloads.  With intra-task parallelism
(``parallel=P``, :mod:`repro.checker.parallel`) the enumeration term
divides across cores: ``O(n · exec + 2**n · Δ / P)`` — the image table
is still built once in the parent, only the scan is partitioned, and
the merge keeps verdict/witness/``checked_sets`` byte-identical to the
serial scan (the canonical counterexample is the *lowest-index*
refutation across blocks).

Since the bitset core (default ``bitset=True``), ``Δ`` is not merely
``O(1)`` set operations but **machine-word operations on Python ints**:
every extended state is interned to a dense id
(:meth:`~repro.checker.universe.Universe.index_of`), candidate sets and
image unions are int bitmasks, and each enumeration step is ``mask |
bit`` / ``acc | image_mask`` — no per-element hashing, no frozenset
allocation, no rehash of state tuples.  For universes up to the word
size the whole per-step Δ fits in a handful of CPU instructions; beyond
that it scales with ``n/64`` words, still orders of magnitude below a
frozenset union.  :meth:`CheckerEngine.scan_masks` is the mask-native
enumeration; public results (:class:`CheckResult` witnesses) decode
masks back to frozensets only at the boundary, so the API and the
enumeration order are byte-identical to the frozenset engine
(``bitset=False``), which survives as benchmark baseline and as the
``bitset-vs-frozenset`` differential-fuzz foil.

Construct the engine with ``compiled=False`` to get the pre-compile
behavior (interpreted ``holds`` per candidate set, interpreted big-step
execution): enumeration order, verdicts, witnesses and ``checked_sets``
are **identical** in both modes — only the cost differs — which the
cross-validation tests, ``benchmarks/bench_checker_engine.py`` and the
``compiled-vs-interpreted`` differential fuzz check enforce.  The naive
reference implementations retained in :mod:`repro.checker.validity`
remain fully interpreted end to end.
"""

import threading
from collections import OrderedDict
from dataclasses import dataclass
from math import comb
from typing import Optional

from ..compile import (
    compile_assertion,
    compile_command,
    compile_state_predicate,
)
from ..compile.assertion import mask_prefix_fn
from ..deps.fingerprint import (
    Fingerprint,
    FingerprintError,
    fingerprint as _fingerprint,
    subtree_fingerprints as _subtree_fingerprints,
)
from ..semantics.bigstep import post_states, post_states_interpreted
from ..semantics.state import ExtState
from ..util import iter_subsets

_MISSING = object()


@dataclass
class CheckResult:
    """Outcome of a validity check.

    ``valid`` is the verdict; when invalid, ``witness_pre`` is a set of
    initial states satisfying the precondition whose post-set violates
    the postcondition (and ``witness_post`` is that post-set).
    ``checked_sets`` counts the candidate initial sets enumerated.
    """

    valid: bool
    witness_pre: Optional[frozenset] = None
    witness_post: Optional[frozenset] = None
    checked_sets: int = 0

    def __bool__(self):
        return self.valid


def candidate_initial_sets(pre, universe, max_size=None):
    """The initial sets to enumerate.

    A precondition that pins the set exactly (``EqualsSet``) admits a
    single candidate, which keeps pinned-set checks (Thm. 3, App. B)
    tractable over universes whose full powerset is out of reach.
    """
    from ..assertions.semantic import EqualsSet

    if isinstance(pre, EqualsSet):
        if max_size is None or len(pre.target) <= max_size:
            return [pre.target]
        return []
    return iter_subsets(universe.ext_states(), max_size=max_size)


class ImageCache:
    """A thread-safe memo of single-state executions.

    Keys are ``(command_fingerprint, domain, program_state)`` — the
    command participates via its stable structural content hash
    (:func:`~repro.deps.fingerprint.fingerprint`), domains hash
    structurally — so the cache is safe to share across universes, tasks
    and :meth:`~repro.api.session.Session.verify_many` threads, and
    equal commands share entries no matter how they were built; values
    are the ``frozenset`` of final program states.  (A command outside
    the fingerprintable fragment stays in the key as the object itself —
    behaviorally identical, just invisible to cone invalidation.)  With
    a ``deps`` :class:`~repro.deps.graph.DependencyGraph`, every stored
    entry records the command-subtree fingerprints it was derived from
    as an ``("image", key)`` artifact, so editing any subtree of a
    command invalidates exactly its image rows.  Computation happens
    outside the lock, so a race costs at most one duplicated execution,
    never a wrong entry.

    ``max_entries`` optionally bounds the table with least-recently-used
    eviction (default ``None``: unbounded, the historical behavior).  A
    long-lived session enumerating many distinct ``(command, state)``
    pairs can set it to cap memory; evicted entries simply re-execute on
    the next request, so eviction never changes a verdict.  Evicting a
    base entry also drops the *mask-tier* entries derived from it —
    each mask entry holds strong references to its universe, command and
    state, so a mask tier outliving the base tier would be a real leak
    in a long-lived process (the daemon's failure mode).  Eviction
    counts appear in :meth:`stats` and, via the session, in
    :meth:`~repro.api.session.Report.summary`.

    ``max_states`` is a divergence guard, not a semantic parameter, but
    the guard stays faithful across sharing: each entry remembers the
    tightest cap it was computed under, and a request with a *smaller*
    cap re-executes under that cap (raising where a cold engine would)
    instead of silently reusing a result the stricter guard might have
    rejected.
    """

    def __init__(self, max_entries=None, deps=None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None, got %r"
                             % (max_entries,))
        self._table = OrderedDict()
        self._masks = {}
        # base key -> the mask-tier keys derived from it, so evicting a
        # base entry drops its masks too (the mask tier would otherwise
        # grow without bound in a long-lived session — each entry pins
        # its universe, command and state alive)
        self._mask_keys = {}
        self._lock = threading.Lock()
        self._deps = deps
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.mask_hits = 0
        self.mask_misses = 0
        self.mask_evictions = 0

    @staticmethod
    def _base_key(command, domain, prog):
        """The fingerprint-canonical key of one ``(command, σ)`` row."""
        try:
            return (_fingerprint(command), domain, prog)
        except FingerprintError:
            return (command, domain, prog)

    def post_image(self, command, prog, domain, max_states=100000,
                   executor=None):
        """``{σ' | ⟨command, prog⟩ → σ'}``, computed at most once per cap.

        ``executor`` supplies the per-state executor (default: the
        compiled :func:`~repro.semantics.bigstep.post_states`); cache
        entries are executor-agnostic — both executors implement the
        same semantics, which the conformance harness cross-checks.
        """
        key = self._base_key(command, domain, prog)
        with self._lock:
            entry = self._table.get(key)
            if entry is not None and max_states >= entry[1]:
                self.hits += 1
                if self.max_entries is not None:
                    self._table.move_to_end(key)
                return entry[0]
        if executor is None:
            executor = post_states
        finals = executor(command, prog, domain, max_states)
        with self._lock:
            entry = self._table.get(key)
            if entry is None or max_states < entry[1]:
                self._table[key] = (finals, max_states)
                if (
                    self.max_entries is not None
                    and len(self._table) > self.max_entries
                ):
                    evicted_key, _ = self._table.popitem(last=False)
                    self.evictions += 1
                    self._evict_masks_of(evicted_key)
                    if self._deps is not None:
                        self._deps.discard(("image", evicted_key))
            self.misses += 1
        if self._deps is not None and isinstance(key[0], Fingerprint):
            self._deps.record(
                ("image", key), _subtree_fingerprints(command)
            )
        return finals

    def _evict_masks_of(self, base_key):
        """Drop the mask-tier entries derived from ``base_key`` (lock held)."""
        for mask_key in self._mask_keys.pop(base_key, ()):
            if self._masks.pop(mask_key, None) is not None:
                self.mask_evictions += 1

    def post_image_mask(self, command, phi, universe, max_states=100000,
                        executor=None):
        """``sem(C, {φ})`` as an id bitmask over ``universe``'s interner.

        The *mask tier*: stored next to the frozenset entries, keyed
        additionally by the universe (masks only mean something relative
        to one interner — the frozenset tier stays universe-agnostic and
        shared).  A mask miss computes through :meth:`post_image`, so the
        base tier still deduplicates the execution itself; the mask tier
        then amortizes the id encoding.  The tier has no independent LRU
        order: it is bounded *through* the base tier — each mask entry is
        linked to the base entry it derives from and is dropped when that
        entry is evicted, so ``max_entries`` bounds both tiers together.
        """
        key = (universe, command, phi)
        with self._lock:
            entry = self._masks.get(key)
            if entry is not None and max_states >= entry[1]:
                self.mask_hits += 1
                return entry[0]
        finals = self.post_image(
            command, phi.prog, universe.domain, max_states, executor=executor
        )
        log = phi.log
        mask = universe.mask_of(ExtState(log, sigma2) for sigma2 in finals)
        with self._lock:
            entry = self._masks.get(key)
            if entry is None or max_states < entry[1]:
                self._masks[key] = (mask, max_states)
                self._mask_keys.setdefault(
                    self._base_key(command, universe.domain, phi.prog), set()
                ).add(key)
            self.mask_misses += 1
        return mask

    def drop(self, key):
        """Remove one base row (and its mask-tier entries) by its
        canonical key — the form ``("image", key)`` artifacts carry."""
        with self._lock:
            self._table.pop(key, None)
            self._evict_masks_of(key)

    def info(self):
        """``{"hits": ..., "misses": ..., "size": ...}``."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._table)}

    def stats(self):
        """:meth:`info` plus evictions, the cap and the mask tier."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._table),
                "evictions": self.evictions,
                "max_entries": self.max_entries,
                "mask_hits": self.mask_hits,
                "mask_misses": self.mask_misses,
                "mask_size": len(self._masks),
                "mask_evictions": self.mask_evictions,
            }

    def clear(self):
        with self._lock:
            self._table.clear()
            self._masks.clear()
            self._mask_keys.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.mask_hits = 0
            self.mask_misses = 0
            self.mask_evictions = 0
        if self._deps is not None:
            # no stale edges may outlive the entries they point at
            self._deps.forget_kind("image")

    def __len__(self):
        with self._lock:
            return len(self._table)


def _walk_prefilter(node, domain, compile_cache):
    """Recursive worker of :func:`state_prefilter` (syntactic nodes only)."""
    from ..assertions.syntax import SAnd, SForallState

    if isinstance(node, SAnd):
        left = _walk_prefilter(node.left, domain, compile_cache)
        right = _walk_prefilter(node.right, domain, compile_cache)
        if left is None:
            return right
        if right is None:
            return left
        return lambda phi: left(phi) and right(phi)
    if isinstance(node, SForallState):
        body = node.body
        if _mentions_state_binder(body):
            return None
        lookups = body.prog_lookups() | body.log_lookups()
        if any(state != node.state for state, _ in lookups):
            return None
        if body.free_value_vars():
            return None
        name = node.state
        if compile_cache is not False:
            return compile_state_predicate(body, name, domain, compile_cache)
        empty = frozenset()

        def keep(phi):
            return bool(body.eval(empty, {name: phi}, {}, domain))

        return keep
    return None


def _mentions_state_binder(node):
    from ..assertions.syntax import (
        SAnd,
        SExistsState,
        SExistsVal,
        SForallState,
        SForallVal,
        SOr,
    )

    if isinstance(node, (SForallState, SExistsState)):
        return True
    if isinstance(node, (SAnd, SOr)):
        return _mentions_state_binder(node.left) or _mentions_state_binder(node.right)
    if isinstance(node, (SForallVal, SExistsVal)):
        return _mentions_state_binder(node.body)
    return False


def state_prefilter(pre, domain, compile_cache=None):
    """A sound per-state pruning predicate implied by ``pre``, or ``None``.

    When the precondition (or a conjunct of it) has the shape
    ``∀⟨φ⟩. A`` with ``A`` mentioning no other state and binding no
    further states, a state failing ``A`` can never belong to a
    precondition-satisfying set — so subsets containing it need not be
    enumerated at all.  The returned predicate keeps exactly the states
    that may still appear; ``None`` means no pruning applies.

    The per-state bodies are compiled (``compile_cache=None`` uses the
    module-wide compile cache; pass ``False`` to force the interpreted
    bodies — the ``compiled=False`` engine does).  Pruning never changes
    the verdict or the reported witness: the skipped sets are precisely
    those the naive oracle would have discarded via ``pre.holds``, and
    the enumeration order of the surviving sets is preserved.
    """
    from ..assertions.syntax import SynAssertion

    if not isinstance(pre, SynAssertion):
        return None
    return _walk_prefilter(pre, domain, compile_cache)


def state_prefilter_mask(pre, universe, compile_cache=None):
    """:func:`state_prefilter` as an id bitmask over ``universe``.

    Bit ``i`` is set iff ``ext_states()[i]`` may still appear in a
    precondition-satisfying set; ``None`` means no pruning applies.  The
    bitset engine intersects candidate enumeration with this mask — the
    surviving ids keep their ascending order, so the enumeration order
    matches the frozenset engine's filtered-tuple walk exactly.
    """
    keep = state_prefilter(pre, universe.domain, compile_cache)
    if keep is None:
        return None
    mask = 0
    bit = 1
    for phi in universe.ext_states():
        if keep(phi):
            mask |= bit
        bit <<= 1
    return mask


def count_candidates(n, cap):
    """``Σ_{k<=cap} C(n, k)`` — the size-ordered enumeration's length."""
    return sum(comb(n, k) for k in range(cap + 1))


def _unrank_combination(n, k, rank):
    """The ``rank``-th (0-based) size-``k`` combination of ``range(n)``
    in lexicographic position order — the order :meth:`scan_masks`'
    recursion enumerates one size class in."""
    out = []
    c = 0
    for d in range(k):
        while True:
            rest = comb(n - c - 1, k - d - 1)
            if rank < rest:
                out.append(c)
                c += 1
                break
            rank -= rest
            c += 1
    return tuple(out)


def _sized_unions(states, img, k):
    """Yield ``(frozenset(combo), ⋃ images)`` for all size-``k`` combos.

    Enumeration order matches ``itertools.combinations`` (and therefore
    :func:`~repro.util.iter_subsets` within one size class); the union is
    extended incrementally along the recursion, one image per step.
    ``img`` maps a state to its image — typically a lazy memoized lookup,
    so an early refutation never executes the untouched states.
    """
    n = len(states)
    if k == 0:
        yield frozenset(), frozenset()
        return
    chosen = []

    def rec(start, union):
        need = k - len(chosen)
        if need == 0:
            yield frozenset(chosen), union
            return
        for i in range(start, n - need + 1):
            phi = states[i]
            chosen.append(phi)
            for item in rec(i + 1, union | img(phi)):
                yield item
            chosen.pop()

    for item in rec(0, frozenset()):
        yield item


class CheckerEngine:
    """Decides hyper-triples over one universe via precomputed images
    and compiled incremental assertion evaluation.

    Parameters
    ----------
    universe:
        The :class:`~repro.checker.universe.Universe` quantified over.
    cache:
        An optional shared :class:`ImageCache`; by default the engine
        owns a private one.  Sharing the cache (as
        :class:`~repro.api.session.Session` does) lets images persist
        across tasks in a batch and across ``verify_many`` threads.
    compile_cache:
        An optional shared :class:`~repro.compile.cache.CompileCache`
        for compiled commands, assertions and prefilter predicates
        (default: the module-wide cache).
    compiled:
        ``True`` (default) routes evaluation through the compile-once
        layer; ``False`` reproduces the pre-compile interpreted engine —
        same enumeration order, verdicts, witnesses and
        ``checked_sets``, used as a benchmark baseline and by the
        ``compiled-vs-interpreted`` conformance check.
    bitset:
        ``True`` (default) runs the compiled enumeration on the interned
        bitset core — candidate sets and image unions are int masks, the
        per-step Δ a machine-word op (see :meth:`scan_masks`).
        ``False`` is the escape hatch to the frozenset recursion: same
        enumeration order, verdicts, witnesses and ``checked_sets``,
        used as a benchmark baseline and by the ``bitset-vs-frozenset``
        conformance check.  Ignored (no bitset core) in interpreted
        mode.
    parallel:
        ``None`` (default) scans serially.  An integer ``P >= 2``
        partitions each large-enough :meth:`check` scan into contiguous
        blocks of the size-ordered enumeration and fans them out to a
        persistent ``P``-worker process pool
        (:class:`~repro.checker.parallel.ParallelScanner`); the merge
        accepts the lowest-index refutation, so verdict, witness and
        ``checked_sets`` stay byte-identical to the serial scan.
        Requires the compiled bitset engine; ineligible scans (pinned
        ``EqualsSet`` preconditions, non-wire-encodable assertions,
        universes off the ``SessionSpec`` grid, scans smaller than
        ``parallel_min_candidates``) silently run serially.
    parallel_min_candidates:
        Candidate-count floor below which a parallel-capable engine
        still scans serially (default ``4096`` — below that the pool
        round-trips dominate).  ``0`` forces the parallel path, used by
        the ``parallel-vs-sequential`` conformance check and the parity
        tests.
    """

    #: Scans with fewer candidates than this run serially even on a
    #: parallel engine — block submission costs ~a millisecond each.
    PARALLEL_MIN_CANDIDATES = 4096

    def __init__(self, universe, cache=None, compile_cache=None, compiled=True,
                 bitset=True, parallel=None, parallel_min_candidates=None):
        self.universe = universe
        self.cache = cache if cache is not None else ImageCache()
        self.compiles = compile_cache
        self.compiled = compiled
        self.bitset = bool(bitset) and bool(compiled)
        self.parallel = parallel if parallel and parallel >= 2 else None
        self.parallel_min_candidates = (
            self.PARALLEL_MIN_CANDIDATES
            if parallel_min_candidates is None
            else parallel_min_candidates
        )
        self._scanner = None
        self._executors = {}
        self._mask_fns = {}

    def _parallel_scanner(self):
        """The lazily-built :class:`~repro.checker.parallel.ParallelScanner`
        behind ``parallel=P`` engines, or ``None``."""
        if self.parallel is None or not self.bitset:
            return None
        if self._scanner is None:
            from .parallel import ParallelScanner

            self._scanner = ParallelScanner(
                self,
                workers=self.parallel,
                min_candidates=self.parallel_min_candidates,
            )
        return self._scanner

    def parallel_stats(self):
        """``{"blocks": ..., "cancelled": ..., "scan_states": ...}`` —
        cumulative partitioned-scan counters (all zero on serial
        engines and on parallel engines that never engaged)."""
        if self._scanner is None:
            return {"blocks": 0, "cancelled": 0, "scan_states": 0}
        return self._scanner.stats()

    def close(self):
        """Shut down the parallel worker pool, if one was ever started.

        Idempotent; a closed engine transparently rebuilds the pool on
        the next eligible parallel scan.  Serial engines are unaffected.
        """
        if self._scanner is not None:
            self._scanner.close()

    # -- compiled artifacts ------------------------------------------------
    def _executor(self, command):
        """The per-state executor for ``command`` in this engine's mode."""
        if not self.compiled:
            return post_states_interpreted
        executor = self._executors.get(command)
        if executor is None:
            step = compile_command(command, self.universe.domain, self.compiles)

            def executor(cmd, prog, domain, max_states, _step=step):
                return _step(prog, max_states)

            self._executors[command] = executor
        return executor

    def _compile(self, assertion):
        return compile_assertion(assertion, self.universe.domain, self.compiles)

    def _mask_fn(self, compiled):
        """The prefix-chain mask evaluator for a non-incremental
        compiled assertion, or ``None`` (memoized per engine — the
        per-id projection cache inside must persist across scans)."""
        fn = self._mask_fns.get(compiled, _MISSING)
        if fn is _MISSING:
            fn = mask_prefix_fn(compiled, self.universe)
            self._mask_fns[compiled] = fn
        return fn

    # -- images ------------------------------------------------------------
    def image(self, command, phi, max_states=100000):
        """``sem(C, {φ})`` — the extended-state image of one state."""
        finals = self.cache.post_image(
            command, phi.prog, self.universe.domain, max_states,
            executor=self._executor(command),
        )
        return frozenset(ExtState(phi.log, sigma2) for sigma2 in finals)

    def image_mask(self, command, phi, max_states=100000):
        """``sem(C, {φ})`` as an id bitmask over this engine's universe."""
        return self.cache.post_image_mask(
            command, phi, self.universe, max_states,
            executor=self._executor(command),
        )

    def image_table(self, command, states, max_states=100000):
        """``{φ: sem(C, {φ})}`` — one execution per distinct program state."""
        return {phi: self.image(command, phi, max_states) for phi in states}

    def sem(self, command, states, max_states=100000):
        """``sem(C, S)`` as a union of cached per-state images."""
        out = frozenset()
        for phi in states:
            out |= self.image(command, phi, max_states)
        return out

    def can_terminate(self, command, phi, max_states=100000):
        """Whether ``φ`` has at least one terminating execution.

        Free given the image: the big-step fixpoint computes the complete
        final-state set, so "can terminate" is "image is non-empty".
        """
        return bool(
            self.cache.post_image(
                command, phi.prog, self.universe.domain, max_states,
                executor=self._executor(command),
            )
        )

    # -- enumeration -------------------------------------------------------
    def filtered_ids(self, pre, prefilter=True):
        """The state ids :meth:`scan_masks` enumerates over, in order:
        every interned grid id, minus the states a prefilterable
        precondition proves can never appear in a satisfying set."""
        ids = range(len(self.universe.ext_states()))
        if prefilter:
            kmask = state_prefilter_mask(pre, self.universe, self.compiles)
            if kmask is not None:
                ids = [i for i in ids if (kmask >> i) & 1]
        return list(ids)

    def scan_masks(
        self,
        pre,
        command,
        post,
        max_size=None,
        max_states=100000,
        prefilter=True,
        pin_equals_set=True,
        start=0,
        ids=None,
        images=None,
    ):
        """The bitset enumeration core: :meth:`scan` over int masks.

        Yields ``(subset_mask, post_mask, ok)`` — the same candidates,
        in the same size-ordered enumeration order, with the same
        verdicts as :meth:`scan`, but every set is an id bitmask over
        the universe's interner: extending a candidate is ``mask |
        bit``, extending its post-set is ``acc | image_mask``, and the
        post evaluator receives only the genuinely new states
        (``image & ~acc`` — distinct by construction, so even fallback-
        free *and* fallback-carrying post assertions skip the multiset
        bookkeeping).  Assertions outside the incremental fragment whose
        shape is a pure quantifier prefix (GNI and friends) are decided
        per candidate by a mask-native whole-set evaluator with per-id
        projection caches; only shapes with no mask specialization
        decode at the boundary.

        Requires the compiled bitset engine (``compiled=True`` and
        ``bitset=True``); callers wanting frozensets use :meth:`scan`,
        which decodes each yield.

        The three resumption parameters exist for the partitioned scan
        (:mod:`repro.checker.parallel`): ``start`` skips the first
        ``start`` candidates of the enumeration *without evaluating
        them* (the k-th size class is entered by combinatorial
        unranking, so the skip is O(k), not O(start)); ``ids``
        overrides the enumerated id list (bypassing the prefilter
        recomputation — the parent already applied it); ``images`` maps
        each id to its precomputed image mask, so the scan performs no
        executions at all.  A resumed scan yields exactly the suffix
        the full enumeration would from candidate ``start`` on.
        """
        from ..assertions.semantic import EqualsSet

        if not self.bitset:
            raise ValueError("scan_masks requires a compiled bitset engine")
        universe = self.universe
        domain = universe.domain
        mask_of = universe.mask_of
        if pin_equals_set and isinstance(pre, EqualsSet):
            if max_size is not None and len(pre.target) > max_size:
                return
            if start:  # the pinned path has exactly one candidate
                return
            subset = pre.target
            if not pre.holds(subset, domain):
                yield mask_of(subset), None, True
                return
            post_set = self.sem(command, subset, max_states)
            ok = bool(self._compile(post).holds(post_set))
            yield mask_of(subset), mask_of(post_set), ok
            return
        states = universe.ext_states()
        state_of = universe.state_of
        if ids is None:
            ids = self.filtered_ids(pre, prefilter)
        n = len(ids)
        cap = n if max_size is None else min(max_size, n)

        cpre = self._compile(pre)
        cpost = self._compile(post)
        imask = {} if images is None else images

        def img(i):
            m = imask.get(i)
            if m is None:
                m = self.image_mask(command, states[i], max_states)
                imask[i] = m
            return m

        # pre: constant -> one lazy evaluation; incremental -> evaluator
        # pushes along the recursion; prefix-chain fallback -> mask-
        # native whole-set per candidate; otherwise -> evaluator whose
        # fallback kernels read the distinct set (delta pushes keep it
        # exact).
        pre_eval = pre_fn = None
        if not cpre.constant:
            if cpre.incremental:
                pre_eval = cpre.evaluator()
            else:
                pre_fn = self._mask_fn(cpre)
                if pre_fn is None:
                    pre_eval = cpre.evaluator()
        post_eval = post_fn = None
        if not cpost.constant:
            if cpost.incremental:
                post_eval = cpost.evaluator()
            else:
                post_fn = self._mask_fn(cpost)
                if post_fn is None:
                    post_eval = cpost.evaluator()
        const = {}

        def const_value(which, compiled):
            value = const.get(which)
            if value is None:
                value = bool(compiled.holds(frozenset()))
                const[which] = value
            return value

        # Lazy post flush, as in the frozenset recursion: each edge
        # parks its *new-states* mask; only a pre-passing leaf pushes
        # the unflushed suffix.  Flushed entries form a stack prefix.
        pend = []
        flushed = [0]

        def flush_post():
            for entry in pend[flushed[0]:]:
                new = entry[0]
                while new:
                    low = new & -new
                    post_eval.push_state(state_of(low.bit_length() - 1))
                    new ^= low
                entry[1] = True
            flushed[0] = len(pend)

        def rec(lo, chosen, acc, need, edge):
            if need == 0:
                if cpre.constant:
                    ok_pre = const_value("pre", cpre)
                elif pre_eval is not None:
                    ok_pre = pre_eval.value()
                else:
                    ok_pre = pre_fn(chosen)
                if not ok_pre:
                    yield chosen, None, True
                    return
                if cpost.constant:
                    ok = const_value("post", cpost)
                elif post_fn is not None:
                    ok = bool(post_fn(acc))
                else:
                    flush_post()
                    ok = post_eval.value()
                yield chosen, acc, ok
                return
            # A resumed scan descends its first branch along the
            # unranked ``edge`` positions, then falls back to the full
            # enumeration — the pushes performed on the way down are
            # exactly those the uninterrupted enumeration would carry.
            begin = edge[0] if edge is not None else lo
            for idx in range(begin, n - need + 1):
                i = ids[idx]
                image = img(i)
                sub_edge = edge[1:] if edge is not None and idx == begin else None
                if pre_eval is not None:
                    pre_eval.push_state(states[i])
                if post_eval is not None:
                    entry = [image & ~acc, False]
                    pend.append(entry)
                    for item in rec(idx + 1, chosen | (1 << i), acc | image,
                                    need - 1, sub_edge):
                        yield item
                    pend.pop()
                    if entry[1]:
                        new = entry[0]
                        while new:
                            top = new.bit_length() - 1
                            post_eval.pop_state(state_of(top))
                            new ^= 1 << top
                        flushed[0] = len(pend)
                else:
                    for item in rec(idx + 1, chosen | (1 << i), acc | image,
                                    need - 1, sub_edge):
                        yield item
                if pre_eval is not None:
                    pre_eval.pop_state(states[i])

        k0 = 0
        first = None
        if start:
            remaining = start
            while k0 <= cap and remaining >= comb(n, k0):
                remaining -= comb(n, k0)
                k0 += 1
            if k0 > cap:
                return  # start points past the enumeration's end
            if remaining:
                first = _unrank_combination(n, k0, remaining)
        for k in range(k0, cap + 1):
            for item in rec(0, 0, 0, k, first if k == k0 else None):
                yield item

    def scan(
        self,
        pre,
        command,
        post,
        max_size=None,
        max_states=100000,
        prefilter=True,
        pin_equals_set=True,
    ):
        """Lazily walk the candidate initial sets, images precomputed.

        Yields ``(subset, post_set, ok)`` per candidate, in the same
        order as :func:`candidate_initial_sets`: ``post_set`` is ``None``
        when the precondition rejects the subset, otherwise it is
        ``sem(C, subset)`` and ``ok`` records whether the postcondition
        accepted it.  Images are computed lazily as the enumeration first
        touches each state (a pre-rejected subset may therefore still
        have executed its members — at most once each), so callers
        polling a budget between candidates never pay more than a few new
        executions per yield, and an early refutation leaves the rest
        unexecuted.

        In compiled mode the pre/post decisions ride incremental
        evaluators pushed and popped along the recursion; in interpreted
        mode (``compiled=False``) each candidate re-walks ``holds``.
        The yielded triples are identical either way.

        ``pin_equals_set=False`` disables the ``EqualsSet``
        single-candidate shortcut and enumerates universe subsets like
        any other precondition — required where the pinned target may
        contain states outside the universe (the terminating check's
        Def. 24 quantifier only ranges over universe subsets).

        On a bitset engine this is a decoding wrapper over
        :meth:`scan_masks` — identical triples, paid per yield; bulk
        consumers that only need verdicts (``check``, the exhaustive
        backend) walk the masks directly and decode refutations only.
        """
        from ..assertions.semantic import EqualsSet

        if self.bitset:
            states_of = self.universe.states_of
            for chosen, acc, ok in self.scan_masks(
                pre, command, post, max_size, max_states, prefilter,
                pin_equals_set,
            ):
                yield (
                    states_of(chosen),
                    None if acc is None else states_of(acc),
                    ok,
                )
            return

        domain = self.universe.domain
        compiled = self.compiled
        if pin_equals_set and isinstance(pre, EqualsSet):
            if max_size is not None and len(pre.target) > max_size:
                return
            subset = pre.target
            if not pre.holds(subset, domain):
                yield subset, None, True
                return
            post_set = self.sem(command, subset, max_states)
            if compiled:
                ok = bool(self._compile(post).holds(post_set))
            else:
                ok = bool(post.holds(post_set, domain))
            yield subset, post_set, ok
            return
        states = self.universe.ext_states()
        if prefilter:
            keep = state_prefilter(
                pre, domain, self.compiles if compiled else False
            )
            if keep is not None:
                states = tuple(phi for phi in states if keep(phi))
        table = {}

        def img(phi):
            image = table.get(phi)
            if image is None:
                image = self.image(command, phi, max_states)
                table[phi] = image
            return image

        cap = len(states) if max_size is None else min(max_size, len(states))
        if not compiled:
            for k in range(cap + 1):
                for subset, post_set in _sized_unions(states, img, k):
                    if not pre.holds(subset, domain):
                        yield subset, None, True
                        continue
                    yield subset, post_set, bool(post.holds(post_set, domain))
            return

        cpre = self._compile(pre)
        cpost = self._compile(post)
        pre_eval = cpre.evaluator()
        post_eval = cpost.evaluator()
        # set-constant assertions need no evaluator traffic at all
        pre_const = cpre.constant
        post_const = cpost.constant
        n = len(states)
        chosen = []
        # Post images are pushed *lazily*: each enumeration edge parks
        # its image on this stack, and only a leaf whose subset passed
        # the precondition flushes the unflushed suffix into the post
        # evaluator — pre-rejected branches (the common case) cost the
        # post assertion nothing, mirroring the interpreter, which never
        # evaluates ``post`` for them at all.  Flushed entries always
        # form a prefix of the stack (ancestors flush before
        # descendants), so one prefix-length counter suffices.
        post_pending = []
        flushed = [0]

        def flush_post():
            for entry in post_pending[flushed[0]:]:
                entry[1] = post_eval.push_many(entry[0])
            flushed[0] = len(post_pending)

        def rec(start, union, k):
            need = k - len(chosen)
            if need == 0:
                subset = frozenset(chosen)
                if not pre_eval.value():
                    yield subset, None, True
                else:
                    if not post_const:
                        flush_post()
                    yield subset, union, post_eval.value()
                return
            for i in range(start, n - need + 1):
                phi = states[i]
                image = img(phi)
                chosen.append(phi)
                if not pre_const:
                    pre_eval.push_state(phi)
                if post_const:
                    for item in rec(i + 1, union | image, k):
                        yield item
                else:
                    entry = [image, None]
                    post_pending.append(entry)
                    for item in rec(i + 1, union | image, k):
                        yield item
                    post_pending.pop()
                    if entry[1] is not None:
                        post_eval.pop_many(entry[1])
                        flushed[0] = len(post_pending)
                if not pre_const:
                    pre_eval.pop_state(phi)
                chosen.pop()

        for k in range(cap + 1):
            for item in rec(0, frozenset(), k):
                yield item

    # -- checks ------------------------------------------------------------
    def check(self, pre, command, post, max_size=None, max_states=100000,
              prefilter=True):
        """Decide ``|= {pre} command {post}`` — engine counterpart of
        :func:`~repro.checker.validity.check_triple`.

        On a ``parallel=P`` engine, eligible scans fan out across the
        worker pool; the merged result is byte-identical to the serial
        scan (see :mod:`repro.checker.parallel`), and ineligible scans
        fall through to the serial path below.
        """
        checked = 0
        if self.bitset:
            scanner = self._parallel_scanner()
            if scanner is not None:
                outcome = scanner.run(
                    pre, command, post, max_size, max_states, prefilter
                )
                if outcome is not None:
                    return outcome[1]  # no budget: always ("done", result)
            for chosen, acc, ok in self.scan_masks(
                pre, command, post, max_size, max_states, prefilter
            ):
                checked += 1
                if not ok:
                    states_of = self.universe.states_of
                    return CheckResult(
                        False, states_of(chosen), states_of(acc), checked
                    )
            return CheckResult(True, checked_sets=checked)
        for subset, post_set, ok in self.scan(
            pre, command, post, max_size, max_states, prefilter
        ):
            checked += 1
            if not ok:
                return CheckResult(False, subset, post_set, checked)
        return CheckResult(True, checked_sets=checked)

    def check_terminating(self, pre, command, post, max_size=None,
                          max_states=100000, prefilter=True):
        """Decide the terminating triple ``|=⇓ {pre} command {post}``
        (Def. 24): the plain triple plus "every initial state can reach a
        final state" — the latter a cache hit, since the enumeration has
        already computed each member's image."""
        checked = 0
        if self.bitset:
            states = self.universe.ext_states()
            states_of = self.universe.states_of
            term = {}

            def all_terminate(chosen):
                # can_terminate(φ) is "image(φ) non-empty", i.e. a
                # non-zero image mask — no decode needed
                m = chosen
                while m:
                    low = m & -m
                    i = low.bit_length() - 1
                    m ^= low
                    t = term.get(i)
                    if t is None:
                        t = bool(
                            self.image_mask(command, states[i], max_states)
                        )
                        term[i] = t
                    if not t:
                        return False
                return True

            for chosen, acc, ok in self.scan_masks(
                pre, command, post, max_size, max_states, prefilter,
                pin_equals_set=False,
            ):
                checked += 1
                if acc is None:  # precondition rejected the subset
                    continue
                if not ok or not all_terminate(chosen):
                    return CheckResult(
                        False, states_of(chosen), states_of(acc), checked
                    )
            return CheckResult(True, checked_sets=checked)
        for subset, post_set, ok in self.scan(
            pre, command, post, max_size, max_states, prefilter,
            pin_equals_set=False,
        ):
            checked += 1
            if post_set is None:  # precondition rejected the subset
                continue
            if not ok:
                return CheckResult(False, subset, post_set, checked)
            if not all(self.can_terminate(command, phi, max_states) for phi in subset):
                return CheckResult(False, subset, post_set, checked)
        return CheckResult(True, checked_sets=checked)

    def sampled_check(self, pre, command, post, rng, samples=200, max_set_size=4,
                      max_states=100000):
        """Randomized refutation search — engine counterpart of
        :func:`~repro.checker.validity.sampled_check_triple`.

        Draws the same subsets as the naive reference for the same
        ``rng``; each sampled state is executed at most once thanks to
        the image cache, and the assertions are evaluated through their
        compiled whole-set closures (the draws are independent, so there
        is no prefix to evaluate incrementally along).
        """
        domain = self.universe.domain
        states = list(self.universe.ext_states())
        if self.compiled:
            cpre = self._compile(pre)
            cpost = self._compile(post)
            pre_holds = cpre.holds
            post_holds = cpost.holds
        else:
            pre_holds = lambda S: pre.holds(S, domain)  # noqa: E731
            post_holds = lambda S: post.holds(S, domain)  # noqa: E731
        checked = 0
        for _ in range(samples):
            k = rng.randint(0, max_set_size)
            subset = frozenset(rng.sample(states, min(k, len(states))))
            checked += 1
            if not pre_holds(subset):
                continue
            post_set = self.sem(command, subset, max_states)
            if not post_holds(post_set):
                return CheckResult(False, subset, post_set, checked)
        return CheckResult(True, checked_sets=checked)

    def __repr__(self):
        if not self.compiled:
            mode = "interpreted"
        elif self.bitset:
            mode = "compiled+bitset"
        else:
            mode = "compiled"
        return "CheckerEngine(%r, cache=%d images, %s)" % (
            self.universe,
            len(self.cache),
            mode,
        )
