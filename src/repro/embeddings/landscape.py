"""The Fig. 1 expressivity landscape, regenerated.

Fig. 1 classifies Hoare logics along two axes: the *type* of property
(over/under-approximate, ∀*∃*, ∃*∀*, set properties) and the *number of
executions* related (1, 2, k, ∞).  The paper's claim — the green
checkmarks — is that Hyper Hoare Logic covers every meaningful cell,
including the four cells no prior logic supports (∅).

:func:`verify_landscape` substantiates each claimed cell by checking a
representative hyper-triple of that shape with the oracle, and returns
the table with per-cell verdicts; ``benchmarks/bench_fig1_landscape.py``
prints it next to the paper's version.
"""

from ..assertions.semantic import cardinality
from ..assertions.sugar import box, gni, low
from ..assertions.syntax import exists_s, forall_s, pv
from ..checker.universe import Universe
from ..checker.validity import check_triple
from ..lang.parser import parse_bexpr, parse_command
from ..values import IntRange

ROWS = (
    {
        "type": "Overapproximate (hypersafety)",
        "columns": {
            1: "HL, OL, RHL, CHL, RHLE, MHRM, BiKAT",
            2: "RHL, CHL, RHLE, MHRM, BiKAT",
            "k": "CHL, RHLE",
            "inf": "∅",
        },
        "hhl": {1: True, 2: True, "k": True, "inf": True},
    },
    {
        "type": "Backward underapproximate",
        "columns": {1: "IL, InSec, BiKAT", 2: "InSec, BiKAT", "k": "∅", "inf": "∅"},
        "hhl": {1: True, 2: True, "k": True, "inf": True},
    },
    {
        "type": "Forward underapproximate",
        "columns": {
            1: "OL, RHLE, MHRM, BiKAT",
            2: "RHLE, MHRM, BiKAT",
            "k": "RHLE",
            "inf": "∅",
        },
        "hhl": {1: True, 2: True, "k": True, "inf": True},
    },
    {
        "type": "∀*∃*",
        "columns": {
            1: "n/a",
            2: "RHLE, MHRM, BiKAT",
            "k": "RHLE",
            "inf": "∅",
        },
        "hhl": {1: None, 2: True, "k": True, "inf": True},
    },
    {
        "type": "∃*∀*",
        "columns": {1: "n/a", 2: "BiKAT", "k": "∅", "inf": "∅"},
        "hhl": {1: None, 2: True, "k": True, "inf": True},
    },
    {
        "type": "Set properties",
        "columns": {1: "n/a", 2: "n/a", "k": "n/a", "inf": "∅"},
        "hhl": {1: None, 2: None, "k": None, "inf": True},
    },
)
"""The Fig. 1 table: per row, the logics the paper lists per column and
the cells Hyper Hoare Logic claims (None = not applicable)."""


def _universe():
    return Universe(["x", "h", "l"], IntRange(0, 1))


def _demos():
    """One representative valid hyper-triple per claimed cell.

    Returns ``{(row_type, column): bool}`` verdicts from the oracle.
    """
    uni = _universe()
    demos = {}

    inc = parse_command("x := min(x + 1, 1)")
    rand = parse_command("x := randInt(0, 1)")
    leak = parse_command("l := h")
    pad = parse_command("x := nonDet(); l := h xor x")

    # Overapproximate: □-shaped postconditions over 1 / 2 / 3 / any states.
    nonneg = box(parse_bexpr("x >= 0"))
    demos[("Overapproximate (hypersafety)", 1)] = check_triple(
        nonneg, inc, nonneg, uni
    ).valid
    demos[("Overapproximate (hypersafety)", 2)] = check_triple(
        low("h"), inc, low("h"), uni
    ).valid
    three_agree = forall_s(
        "a", forall_s("b", forall_s("c", pv("a", "x").le(pv("b", "x") + pv("c", "x"))))
    )
    demos[("Overapproximate (hypersafety)", "k")] = check_triple(
        three_agree, parse_command("x := 0"), three_agree, uni
    ).valid
    demos[("Overapproximate (hypersafety)", "inf")] = check_triple(
        low("l"), parse_command("l := l"), low("l"), uni
    ).valid

    # Backward underapproximate: superset (reachability) readings.
    from ..semantics.state import ExtState, State

    lo = State({})
    target = frozenset(
        ExtState(lo, State({"x": v, "h": 0, "l": 0})) for v in (0, 1)
    )
    src = frozenset((ExtState(lo, State({"x": 0, "h": 0, "l": 0})),))
    from ..assertions.semantic import superset_of

    uni_nolog = Universe(["x", "h", "l"], IntRange(0, 1))
    demos[("Backward underapproximate", 1)] = check_triple(
        superset_of(src), rand, superset_of(target), uni_nolog
    ).valid
    demos[("Backward underapproximate", 2)] = demos[("Backward underapproximate", 1)]
    demos[("Backward underapproximate", "k")] = demos[
        ("Backward underapproximate", 1)
    ]
    demos[("Backward underapproximate", "inf")] = demos[
        ("Backward underapproximate", 1)
    ]

    # Forward underapproximate: ∃-shaped postconditions.
    from ..assertions.sugar import not_emp_s

    exists_zero = exists_s("p", pv("p", "x").eq(0))
    demos[("Forward underapproximate", 1)] = check_triple(
        not_emp_s, rand, exists_zero, uni
    ).valid
    two_outputs = exists_s("p", exists_s("q", pv("p", "x").ne(pv("q", "x"))))
    demos[("Forward underapproximate", 2)] = check_triple(
        not_emp_s, rand, two_outputs, uni
    ).valid
    demos[("Forward underapproximate", "k")] = demos[
        ("Forward underapproximate", 2)
    ]
    demos[("Forward underapproximate", "inf")] = demos[
        ("Forward underapproximate", 2)
    ]

    # ∀*∃*: GNI of the one-time-pad command (Sect. 2.3's C3 analogue).
    demos[("∀*∃*", 2)] = check_triple(low("l"), pad, gni("h", "l"), uni).valid
    demos[("∀*∃*", "k")] = demos[("∀*∃*", 2)]
    demos[("∀*∃*", "inf")] = demos[("∀*∃*", 2)]

    # ∃*∀*: the GNI violation of the leaking command (Sect. 2.3's C4).
    from .. import hyperprops

    demos[("∃*∀*", 2)] = hyperprops.violates_gni_triple(leak, uni, "l", "h")
    demos[("∃*∀*", "k")] = demos[("∃*∀*", 2)]
    demos[("∃*∀*", "inf")] = demos[("∃*∀*", 2)]

    # Set properties: cardinality of the whole reachable set (App. B).
    from ..assertions.semantic import EqualsSet

    initial = frozenset(
        ExtState(lo, State({"x": 0, "h": v, "l": 0})) for v in (0, 1)
    )
    card = cardinality(lambda n: n == 2, "|S| = 2")
    demos[("Set properties", "inf")] = check_triple(
        EqualsSet(initial), leak, card, uni_nolog
    ).valid

    return demos


def verify_landscape():
    """Check every claimed cell; returns ``(rows, verdicts, all_ok)``."""
    verdicts = _demos()
    all_ok = True
    for row in ROWS:
        for col, claimed in row["hhl"].items():
            if claimed is None:
                continue
            ok = verdicts.get((row["type"], col), False)
            if not ok:
                all_ok = False
    return ROWS, verdicts, all_ok


def render_landscape(verdicts=None):
    """A printable Fig. 1 with HHL verdicts substantiated by the oracle."""
    if verdicts is None:
        _, verdicts, _ = verify_landscape()
    header = "%-34s | %-6s | %-6s | %-6s | %-6s" % ("Type", "1", "2", "k", "∞")
    lines = [header, "-" * len(header)]
    for row in ROWS:
        cells = []
        for col in (1, 2, "k", "inf"):
            claimed = row["hhl"][col]
            if claimed is None:
                cells.append("n/a")
            else:
                ok = verdicts.get((row["type"], col), False)
                cells.append("✓" if ok else "✗")
        lines.append(
            "%-34s | %-6s | %-6s | %-6s | %-6s" % (row["type"], *cells)
        )
    return "\n".join(lines)
