"""Compiled hyper-assertion evaluators: whole-set closures + incremental
push/pop evaluation.

The Def. 5 oracle asks the *same* assertion about an exponential family
of candidate sets that the engine enumerates by extending a prefix one
state at a time.  This module compiles an :class:`~repro.assertions.base.
Assertion` once into a :class:`CompiledAssertion` offering two modes:

- **whole-set**: ``holds(S)`` through closures — syntactic (Def. 9)
  assertions become one closure per tree (no per-node ``eval`` dispatch,
  no per-binding environment copies: quantifiers mutate one shared
  environment dict and restore it on exit);
- **incremental**: ``evaluator()`` returns a :class:`SetEvaluator` with
  ``push(φ)`` / ``push_many(φs)`` / ``pop()`` / ``value()`` so the
  engine decides each candidate set in ``O(Δ)`` work as the enumeration
  extends a prefix by one state, instead of re-walking the assertion
  over the whole set.

Incremental evaluation is *compositional*: boolean structure, finite
value quantifiers (sunk into the compiled body, or expanded over the
domain), per-state predicates, cardinality forms, set comparisons, and
**single same-polarity blocks of state quantifiers** (a ``∀…∀`` /
``∃…∃`` run is one quantifier over tuples — ``low``, ``box``,
agreement assertions — and is monotone once decided, enabling
short-circuit deferral) maintain journaled counters under push/pop.
Forms that are genuinely non-monotone — alternating quantifier blocks
like GNI's ``∀∀∃``, where one added state can flip the verdict either
way, opaque semantic predicates, the set-splitting operators (``⊗``,
``⨂``, ``⊑``/``⊒``) — fall back to compiled whole-set evaluation *with
the reason recorded* on :attr:`CompiledAssertion.fallback_reasons` (and
counted per reason by the owning
:class:`~repro.compile.cache.CompileCache`), never silently.

Verdict parity is absolute: for every set the evaluator's ``value()``
equals the interpreted ``assertion.holds(S, domain)`` — the engine's
enumeration order, verdicts and witnesses are byte-identical to the
interpreted path, which the differential fuzz harness re-checks on
every trial (``compiled-vs-interpreted``).
"""

from itertools import product

from ..assertions.base import Assertion
from ..assertions.semantic import (
    AndAssertion,
    Cardinality,
    ContainsState,
    EqualsSet,
    ExistsStates,
    ExistsValue,
    FALSE_H,
    ForallStates,
    ForallValue,
    NotAssertion,
    OrAssertion,
    SemAssertion,
    SubsetOf,
    SupersetOf,
    TRUE_H,
)
from ..assertions.syntax import (
    HBin,
    HFun,
    HLit,
    HLog,
    HProg,
    HTupleE,
    HVar,
    SAnd,
    SBool,
    SCmp,
    SExistsState,
    SExistsVal,
    SForallState,
    SForallVal,
    SOr,
    SynAssertion,
)
from ..errors import EvaluationError
from ..lang import expr as _pe
from .cache import default_cache
from .hyper import compile_cmp, compile_hexpr

_FORALL = 0
_EXISTS = 1

_EMPTY_SET = frozenset()
_MISSING = object()

#: Cap on the number of instantiations produced by expanding value
#: quantifiers over the domain; beyond it the subtree falls back to
#: whole-set evaluation (recorded, like every fallback).
EXPANSION_LIMIT = 256


# ---------------------------------------------------------------------------
# whole-set closures
# ---------------------------------------------------------------------------


def _compile_syn(node, values):
    """Compile a Def. 9 assertion to ``(S, sigma, delta) -> bool``.

    ``sigma``/``delta`` are *mutable* dicts owned by the caller;
    quantifiers bind by mutation and restore on exit, so one environment
    pair serves the whole evaluation (the interpreter copies per
    binding).  Iteration orders match the interpreter exactly: state
    quantifiers walk the same frozenset, value quantifiers walk the
    domain in its declared order.
    """
    t = type(node)
    if t is SBool:
        value = node.value
        return lambda S, sigma, delta: value
    if t is SCmp:
        fn = compile_cmp(node.op)
        left = compile_hexpr(node.left)
        right = compile_hexpr(node.right)
        return lambda S, sigma, delta: fn(
            left(sigma, delta), right(sigma, delta)
        )
    if t is SAnd:
        left = _compile_syn(node.left, values)
        right = _compile_syn(node.right, values)
        return lambda S, sigma, delta: left(S, sigma, delta) and right(
            S, sigma, delta
        )
    if t is SOr:
        left = _compile_syn(node.left, values)
        right = _compile_syn(node.right, values)
        return lambda S, sigma, delta: left(S, sigma, delta) or right(
            S, sigma, delta
        )
    if t is SForallVal or t is SExistsVal:
        var = node.var
        body = _compile_syn(node.body, values)
        want = t is SExistsVal  # short-circuit value

        def quant_val(S, sigma, delta):
            saved = delta.get(var, _MISSING)
            try:
                for v in values:
                    delta[var] = v
                    if body(S, sigma, delta) == want:
                        return want
                return not want
            finally:
                if saved is _MISSING:
                    delta.pop(var, None)
                else:
                    delta[var] = saved

        return quant_val
    if t is SForallState or t is SExistsState:
        name = node.state
        body = _compile_syn(node.body, values)
        want = t is SExistsState

        def quant_state(S, sigma, delta):
            saved = sigma.get(name, _MISSING)
            try:
                for phi in S:
                    sigma[name] = phi
                    if body(S, sigma, delta) == want:
                        return want
                return not want
            finally:
                if saved is _MISSING:
                    sigma.pop(name, None)
                else:
                    sigma[name] = saved

        return quant_state
    raise TypeError("not a syntactic hyper-assertion: %r" % (node,))


def _whole_any(assertion, domain, values, delta=None):
    """``S -> bool`` for any assertion: compiled closures for the Def. 9
    fragment, composed children for the pointwise combinators, and the
    assertion's own (already-Python) predicate otherwise.

    ``delta`` carries value-variable bindings for subtrees evaluated
    under a domain-expanded quantifier (the fallback path); top-level
    assertions are closed and pass none.
    """
    if isinstance(assertion, SynAssertion):
        fn = _compile_syn(assertion, values)
        if delta:
            bound = dict(delta)
            return lambda S: bool(fn(S, {}, dict(bound)))
        return lambda S: bool(fn(S, {}, {}))
    t = type(assertion)
    if t is AndAssertion:
        parts = tuple(_whole_any(p, domain, values) for p in assertion.parts)
        return lambda S: all(p(S) for p in parts)
    if t is OrAssertion:
        parts = tuple(_whole_any(p, domain, values) for p in assertion.parts)
        return lambda S: any(p(S) for p in parts)
    if t is NotAssertion:
        operand = _whole_any(assertion.operand, domain, values)
        return lambda S: not operand(S)
    return lambda S: bool(assertion.holds(S, domain))


# ---------------------------------------------------------------------------
# incremental kernels
# ---------------------------------------------------------------------------
#
# A kernel sees the *distinct-set* transitions of a SetEvaluator —
# ``add(φ)`` when a state first enters the multiset, ``remove(φ)`` when
# its count returns to zero — and answers ``value()`` from maintained
# counters.  Transitions are LIFO (the engine's recursion pushes and
# pops strictly nested), so at ``remove(φ)`` the distinct set equals
# what it was just after the matching ``add(φ)``; removals may therefore
# recompute exactly the quantities the addition computed, and subtract.


class _KConst:
    """A value independent of the set, computed lazily (so compile-time
    never raises where the interpreter would raise at ``holds`` time)."""

    __slots__ = ("_fn", "_value")

    def __init__(self, fn):
        self._fn = fn
        self._value = None

    def add(self, phi):
        pass

    def remove(self, phi):
        pass

    def value(self):
        if self._value is None:
            self._value = bool(self._fn())
        return self._value


class _KAnd:
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = children

    def add(self, phi):
        for child in self.children:
            child.add(phi)

    def remove(self, phi):
        for child in self.children:
            child.remove(phi)

    def value(self):
        return all(child.value() for child in self.children)


class _KOr(_KAnd):
    __slots__ = ()

    def value(self):
        return any(child.value() for child in self.children)


class _KNot:
    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child

    def add(self, phi):
        self.child.add(phi)

    def remove(self, phi):
        self.child.remove(phi)

    def value(self):
        return not self.child.value()


class _KCard:
    """``pred(|S|)`` — cardinality forms (``emp``, ``¬emp``, size caps)."""

    __slots__ = ("pred", "n")

    def __init__(self, pred):
        self.pred = pred
        self.n = 0

    def add(self, phi):
        self.n += 1

    def remove(self, phi):
        self.n -= 1

    def value(self):
        return bool(self.pred(self.n))


class _KForallPred:
    """``∀φ∈S. pred(φ)`` — count of failing states.

    Removal restores the journaled count instead of re-calling ``pred``
    (push/pop nest LIFO, so the popped entry is always the matching one).
    """

    __slots__ = ("pred", "bad", "journal")

    def __init__(self, pred):
        self.pred = pred
        self.bad = 0
        self.journal = []

    def add(self, phi):
        self.journal.append(self.bad)
        if not self.pred(phi):
            self.bad += 1

    def remove(self, phi):
        self.bad = self.journal.pop()

    def value(self):
        return self.bad == 0


class _KExistsPred:
    """``∃φ∈S. pred(φ)`` — count of satisfying states (journaled like
    :class:`_KForallPred`)."""

    __slots__ = ("pred", "good", "journal")

    def __init__(self, pred):
        self.pred = pred
        self.good = 0
        self.journal = []

    def add(self, phi):
        self.journal.append(self.good)
        if self.pred(phi):
            self.good += 1

    def remove(self, phi):
        self.good = self.journal.pop()

    def value(self):
        return self.good > 0


class _KMember:
    """``φ0 ∈ S``."""

    __slots__ = ("target", "present")

    def __init__(self, target):
        self.target = target
        self.present = 0

    def add(self, phi):
        if phi == self.target:
            self.present += 1

    def remove(self, phi):
        if phi == self.target:
            self.present -= 1

    def value(self):
        return self.present > 0


class _KSetCmp:
    """``S ⊆ T`` / ``T ⊆ S`` / ``S = T`` against a fixed target set."""

    __slots__ = ("target", "need_subset", "need_superset", "outside", "covered")

    def __init__(self, target, need_subset, need_superset):
        self.target = target
        self.need_subset = need_subset
        self.need_superset = need_superset
        self.outside = 0  # distinct states not in target
        self.covered = 0  # distinct target members present

    def add(self, phi):
        if phi in self.target:
            self.covered += 1
        else:
            self.outside += 1

    def remove(self, phi):
        if phi in self.target:
            self.covered -= 1
        else:
            self.outside -= 1

    def value(self):
        if self.need_subset and self.outside:
            return False
        if self.need_superset and self.covered != len(self.target):
            return False
        return True


def _tuples_containing(others, full, phi, m):
    """All ``m``-tuples over ``full = others + [phi]`` mentioning ``phi``,
    generated directly (split on the first occurrence of ``phi``) — no
    wasted enumeration, no per-tuple membership tests."""
    if m == 1:
        yield (phi,)
        return
    one = (phi,)
    for p in range(m):
        for prefix in product(others, repeat=p):
            for suffix in product(full, repeat=m - 1 - p):
                yield prefix + one + suffix


class _KBlock1:
    """One block of same-polarity state quantifiers: ``Q⟨x1⟩…Q⟨xm⟩. B``
    with ``B`` state-quantifier-free — a quantifier over ``m``-tuples.

    Maintains the count of tuples satisfying the body; adding a state
    evaluates the body only on tuples that mention it, and *removal is
    O(1)*: each add journals its counter snapshot and removal restores
    it, so backtracking never re-evaluates a body.  Push/pop nest LIFO
    (the engine's recursion), which is what makes the journal valid.

    Single-block quantifiers are additionally *monotone once decided*: a
    violating tuple stays violating under additions (``∀``), a
    satisfying one stays satisfying (``∃``).  Decided kernels therefore
    defer added states without evaluating anything — matching the
    interpreter's short-circuit exit, which otherwise makes
    mostly-rejecting preconditions O(1) per candidate for the
    interpreter while exact counting pays O(|S|) per push.
    """

    __slots__ = ("q", "m", "body", "prepare", "items", "states", "good",
                 "total", "journal")

    def __init__(self, q, m, body, prepare):
        self.q = q
        self.m = m
        self.body = body
        self.prepare = prepare
        self.items = {}
        self.states = []
        self.good = 0
        self.total = 0
        self.journal = []

    def _decided(self):
        if self.q == _FORALL:
            return self.good != self.total
        return self.good > 0

    def add(self, phi):
        if self._decided():
            self.journal.append(None)
            return
        self.journal.append((self.good, self.total))
        item = self.items.get(phi)
        if item is None:
            item = self.prepare(phi)
            self.items[phi] = item
        body = self.body
        m = self.m
        states = self.states
        good = 0
        total = 0
        if m == 1:
            total = 1
            if body((item,)):
                good = 1
        elif m == 2:
            # the overwhelmingly common case (low, agreement): unrolled
            for s in states:
                total += 2
                if body((item, s)):
                    good += 1
                if body((s, item)):
                    good += 1
            total += 1
            if body((item, item)):
                good += 1
        else:
            states.append(item)
            for t in _tuples_containing(states[:-1], states, item, m):
                total += 1
                if body(t):
                    good += 1
            states.pop()
        states.append(item)
        self.good += good
        self.total += total

    def remove(self, phi):
        entry = self.journal.pop()
        if entry is None:
            return
        self.good, self.total = entry
        self.states.pop()

    def value(self):
        if self.q == _FORALL:
            return self.good == self.total
        return self.good > 0


class _KFallback:
    """Whole-set (compiled) evaluation of a non-incremental subtree."""

    __slots__ = ("evaluator", "whole")

    def __init__(self, evaluator, whole):
        self.evaluator = evaluator
        self.whole = whole

    def add(self, phi):
        pass

    def remove(self, phi):
        pass

    def value(self):
        return self.whole(frozenset(self.evaluator.distinct))


# ---------------------------------------------------------------------------
# classification: assertion -> kernel plan
# ---------------------------------------------------------------------------
#
# A *plan* is ``make(evaluator) -> kernel``: classification and body
# compilation happen once per CompiledAssertion, kernel instantiation
# (fresh mutable counters + environment dicts) happens once per
# SetEvaluator, so concurrent scans never share mutable state.


def _fallback_plan(assertion, domain, values, reasons, reason, delta=None):
    reasons.append(reason)
    whole = _whole_any(assertion, domain, values, delta)
    return lambda ev: _KFallback(ev, whole)


# ---------------------------------------------------------------------------
# positional body compilation with per-state projections
# ---------------------------------------------------------------------------
#
# Block kernels evaluate their body on *items* rather than raw states:
# ``item = (φ, proj_0(φ), proj_1(φ), ...)`` where each projection is a
# maximal body subexpression that depends on a single quantified state
# and no value variables.  Items are prepared once per state (and memoized
# per kernel), so the per-tuple body collapses to comparisons over cached
# scalars — the compile-once counterpart of re-walking the expression
# tree for every pair the interpreter visits.

#: Placeholder state name projections are canonicalized to (so equal
#: subexpressions over different binder names share one projection).
_PROJ_NAME = "\x00proj"

#: Shared empty value environment for projection evaluation (projection
#: expressions are checked to be value-variable-free).
_EMPTY_DELTA = {}


class _Projections:
    """The projection registry of one compiled body."""

    __slots__ = ("index", "exprs")

    def __init__(self):
        self.index = {}
        self.exprs = []

    def slot(self, canonical):
        idx = self.index.get(canonical)
        if idx is None:
            idx = len(self.exprs)
            self.index[canonical] = idx
            self.exprs.append(canonical)
        return idx

    def prepare_fn(self):
        """``φ -> item`` evaluating every projection once.

        A projection that *raises* (an ill-typed subexpression the body's
        short-circuiting would never have evaluated) poisons the item:
        the bare ``(φ,)`` is returned and the kernel's body dispatch
        falls back to the non-hoisted body, which evaluates
        subexpressions lazily in place — exactly like the interpreter.
        """
        projfns = tuple(compile_hexpr(expr) for expr in self.exprs)
        if not projfns:
            return lambda phi: (phi,)

        def prepare(phi):
            sigma = {_PROJ_NAME: phi}
            item = [phi]
            try:
                for fn in projfns:
                    item.append(fn(sigma, _EMPTY_DELTA))
            except Exception:
                return (phi,)
            return tuple(item)

        return prepare


class _BodyGen:
    """Generates one Python expression for a block body.

    The generated source indexes item tuples directly (``ts[i][j]`` for
    hoisted projections, ``ts[i][0].prog[...]`` for residual lookups)
    and renders value quantifiers as ``all(...)``/``any(...)``
    generator expressions over the domain — the whole body becomes a
    single code object with zero Python-level call nesting, evaluated
    with the exact semantics (short-circuiting, iteration order, total
    operators) of the interpreter.
    """

    #: Binary operators rendered as native Python syntax (semantics
    #: identical to their :data:`repro.lang.expr.BINOPS` entries).
    _NATIVE_BIN = {"+": "+", "-": "-", "*": "*", "xor": "^"}
    _CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}

    def __init__(self, values, slots, projections, delta, hoist=True):
        self.values = values
        self.slots = slots
        self.projections = projections
        self.delta = delta
        self.hoist = hoist  # False: evaluate subexpressions in place
        self.ns = {"_VALUES": tuple(values)}
        self.scope = {}  # value-variable name -> generated identifier
        self._n = 0

    def _bind(self, obj, prefix):
        name = "_%s%d" % (prefix, self._n)
        self._n += 1
        self.ns[name] = obj
        return name

    def _raiser(self, message):
        def fail():
            raise EvaluationError(message)

        return "%s()" % self._bind(fail, "err")

    def _const(self, value):
        if type(value) is bool or type(value) is int:
            return repr(value)
        return self._bind(value, "c")

    def hexpr(self, e):
        if self.hoist:
            lookups = e.prog_lookups() | e.log_lookups()
            names = {state for state, _ in lookups}
            if len(names) == 1 and not e.free_value_vars():
                (name,) = names
                slot = self.slots.get(name)
                if slot is not None:
                    canonical = e.rename_state(name, _PROJ_NAME)
                    return "ts[%d][%d]" % (
                        slot, self.projections.slot(canonical) + 1
                    )
        t = type(e)
        if t is HLit:
            return self._const(e.value)
        if t is HVar:
            ident = self.scope.get(e.name)
            if ident is not None:
                return ident
            if e.name in self.delta:
                return self._const(self.delta[e.name])
            return self._raiser("unbound value variable %r" % e.name)
        if t is HProg or t is HLog:
            slot = self.slots.get(e.state)
            if slot is None:
                return self._raiser("unbound state variable %r" % e.state)
            field = "prog" if t is HProg else "log"
            return "ts[%d][0].%s[%s]" % (slot, field, self._bind(e.var, "v"))
        if t is HBin:
            op = self._NATIVE_BIN.get(e.op)
            left = self.hexpr(e.left)
            right = self.hexpr(e.right)
            if op is not None:
                return "(%s %s %s)" % (left, op, right)
            fn = _pe.BINOPS.get(e.op)
            if fn is None:
                return self._raiser("unknown binary operator %r" % e.op)
            return "%s(%s, %s)" % (self._bind(fn, "op"), left, right)
        if t is HFun:
            fn = _pe.FUNS.get(e.name)
            if fn is None:
                return self._raiser("unknown function %r" % e.name)
            args = ", ".join(self.hexpr(a) for a in e.args)
            return "%s(%s)" % (self._bind(fn, "f"), args)
        if t is HTupleE:
            items = [self.hexpr(i) for i in e.items]
            if len(items) == 1:
                return "(%s,)" % items[0]
            return "(%s)" % ", ".join(items)
        raise TypeError("not a hyper-expression: %r" % (e,))

    def body(self, node):
        t = type(node)
        if t is SBool:
            return repr(node.value)
        if t is SCmp:
            left = self.hexpr(node.left)
            right = self.hexpr(node.right)
            if node.op in self._CMP_OPS:
                return "(%s %s %s)" % (left, node.op, right)
            return self._raiser("unknown comparison %r" % node.op)
        if t is SAnd:
            return "(%s and %s)" % (self.body(node.left), self.body(node.right))
        if t is SOr:
            return "(%s or %s)" % (self.body(node.left), self.body(node.right))
        if t is SForallVal or t is SExistsVal:
            ident = "_y%d" % self._n
            self._n += 1
            saved = self.scope.get(node.var)
            self.scope[node.var] = ident
            try:
                inner = self.body(node.body)
            finally:
                if saved is None:
                    self.scope.pop(node.var, None)
                else:
                    self.scope[node.var] = saved
            fn = "all" if t is SForallVal else "any"
            return "%s(%s for %s in _VALUES)" % (fn, inner, ident)
        raise TypeError("not a block body: %r" % (node,))

    def compile(self, node):
        """``ts -> bool`` — the generated body function."""
        source = "lambda ts: (%s)" % self.body(node)
        return eval(source, self.ns)  # noqa: S307 — our own generated code


def _finalize_blocks(blocks, wrappers, body_node, values, delta):
    """The kernel plan for one peeled quantifier block + state-free body.

    ``wrappers`` are the value quantifiers sunk through the prefix (they
    commute with every state quantifier below their original position);
    they re-wrap the body, so the compiled body evaluates the value
    loops inline — with short-circuiting, and without expanding the
    kernel over the domain.

    The body is compiled *positionally* over item tuples, with
    single-state subexpressions hoisted into per-state projections (see
    :class:`_Projections`): each state's projections are computed once
    and memoized, so evaluating a tuple combines cached scalars.
    """
    for node in reversed(wrappers):
        body_node = type(node)(node.var, body_node)
    # positional slots: block names; inner binders shadow outer ones, so
    # the *last* occurrence of a name wins
    (q, names) = blocks[0]
    slots = {name: i for i, name in enumerate(names)}
    projections = _Projections()
    fast = _BodyGen(values, slots, projections, delta).compile(body_node)
    if projections.exprs:
        # a poisoned item (a projection raised during prepare) is the
        # bare ``(φ,)``: the fast body's ``ts[i][j]`` access then raises
        # IndexError — which nothing else in the generated code can — and
        # the dispatch falls back to the non-hoisted body, preserving the
        # interpreter's lazy evaluation order for raising subexpressions
        safe = _BodyGen(
            values, slots, _Projections(), delta, hoist=False
        ).compile(body_node)

        def body_fn(ts, _fast=fast, _safe=safe):
            try:
                return _fast(ts)
            except IndexError:
                return _safe(ts)

    else:
        body_fn = fast
    prepare = projections.prepare_fn()
    m = len(names)
    return lambda ev: _KBlock1(q, m, body_fn, prepare)


def _has_state_quant(node):
    t = type(node)
    if t is SForallState or t is SExistsState:
        return True
    if t is SAnd or t is SOr:
        return _has_state_quant(node.left) or _has_state_quant(node.right)
    if t is SForallVal or t is SExistsVal:
        return _has_state_quant(node.body)
    return False


def _state_polarities(node, out=None):
    """The set of polarities of all state quantifiers in ``node``."""
    if out is None:
        out = set()
    t = type(node)
    if t is SForallState or t is SExistsState:
        out.add(_FORALL if t is SForallState else _EXISTS)
        _state_polarities(node.body, out)
    elif t is SAnd or t is SOr:
        _state_polarities(node.left, out)
        _state_polarities(node.right, out)
    elif t is SForallVal or t is SExistsVal:
        _state_polarities(node.body, out)
    return out


def _plan_blocks(root, blocks, wrappers, cur, domain, values, delta, reasons,
                 weight):
    """Peel state-quantifier blocks from ``cur`` (entered at ``root``).

    ``blocks`` is the prefix peeled so far as ``(polarity, [names])``
    runs.  A value quantifier met inside the prefix is *sunk* below the
    remaining state quantifiers when they all share its polarity (the
    quantifiers commute, and the compiled body closure then evaluates
    the value loop inline).

    Only a *single* same-polarity block is incremental: a run of
    ``∀``/``∃`` state quantifiers is a quantifier over tuples, monotone
    once decided.  Alternating blocks (``∀…∃``, GNI's ``∀∀∃``) are
    genuinely non-monotone — an added state can flip the verdict either
    way — so they fall back to compiled whole-set evaluation, on the
    *whole* ``root`` subtree, since the peeled binders scope over
    everything below.  A value quantifier whose remaining scope mixes
    polarities falls back the same way: the alternation below would doom
    every expanded instantiation anyway, so one fallback kernel (not
    ``|domain|`` identical ones) does the job.
    """
    t = type(cur)
    if t is SForallState or t is SExistsState:
        pol = _FORALL if t is SForallState else _EXISTS
        if blocks and blocks[-1][0] == pol:
            nblocks = blocks[:-1] + [(pol, blocks[-1][1] + [cur.state])]
        elif blocks:
            return _fallback_plan(
                root, domain, values, reasons,
                "alternating state-quantifier blocks are non-monotone",
                delta,
            )
        else:
            nblocks = blocks + [(pol, [cur.state])]
        return _plan_blocks(
            root, nblocks, wrappers, cur.body, domain, values, delta,
            reasons, weight,
        )
    if not _has_state_quant(cur):
        # the rest is the state-free body (value quantifiers included:
        # the compiled closure evaluates them per body call)
        return _finalize_blocks(blocks, wrappers, cur, values, delta)
    if t is SForallVal or t is SExistsVal:
        vpol = _FORALL if t is SForallVal else _EXISTS
        if _state_polarities(cur.body) == {vpol}:
            # every remaining state quantifier shares the polarity:
            # ``Qy. Q⟨φ⟩. A ≡ Q⟨φ⟩. Qy. A`` — sink the value quantifier
            # into the compiled body
            return _plan_blocks(
                root, blocks, wrappers + [cur], cur.body, domain, values,
                delta, reasons, weight,
            )
        # mixed or opposite polarities remain below: expanding over the
        # domain could only yield children that hit the alternation (or
        # opposite-polarity) fallback themselves — emit one fallback
        return _fallback_plan(
            root, domain, values, reasons,
            "value quantifier above alternating state-quantifier blocks",
            delta,
        )
    return _fallback_plan(
        root, domain, values, reasons,
        "state quantifier nested under boolean structure inside a "
        "quantified body",
        delta,
    )


def _plan_syn(node, domain, values, delta, reasons, weight):
    t = type(node)
    if t is SBool:
        value = node.value
        return lambda ev: _KConst(lambda: value)
    if t is SCmp:
        fn = _compile_syn(node, values)
        d = dict(delta)
        return lambda ev: _KConst(lambda: fn(_EMPTY_SET, {}, dict(d)))
    if t is SAnd or t is SOr:
        left = _plan_syn(node.left, domain, values, delta, reasons, weight)
        right = _plan_syn(node.right, domain, values, delta, reasons, weight)
        kernel = _KAnd if t is SAnd else _KOr
        return lambda ev: kernel((left(ev), right(ev)))
    if t is SForallVal or t is SExistsVal:
        if not _has_state_quant(node.body):
            # constant w.r.t. the set: one compiled closure, no expansion
            fn = _compile_syn(node, values)
            d = dict(delta)
            return lambda ev: _KConst(lambda: fn(_EMPTY_SET, {}, dict(d)))
        vpol = _FORALL if t is SForallVal else _EXISTS
        if _state_polarities(node.body) == {vpol}:
            # sink into the (future) state blocks' compiled body
            return _plan_blocks(
                node, [], [node], node.body, domain, values, delta, reasons,
                weight,
            )
        if weight * max(len(values), 1) > EXPANSION_LIMIT:
            return _fallback_plan(
                node, domain, values, reasons,
                "value-quantifier expansion exceeds %d instantiations"
                % EXPANSION_LIMIT,
                delta,
            )
        children = []
        for v in values:
            d2 = dict(delta)
            d2[node.var] = v
            children.append(
                _plan_syn(
                    node.body, domain, values, d2, reasons,
                    weight * max(len(values), 1),
                )
            )
        kernel = _KAnd if t is SForallVal else _KOr
        children = tuple(children)
        return lambda ev: kernel(tuple(child(ev) for child in children))
    if t is SForallState or t is SExistsState:
        return _plan_blocks(
            node, [], [], node, domain, values, delta, reasons, weight
        )
    return _fallback_plan(
        node, domain, values, reasons,
        "unrecognized syntactic form %s" % type(node).__name__,
        delta,
    )


def _plan_any(assertion, domain, values, reasons):
    if isinstance(assertion, SynAssertion):
        return _plan_syn(assertion, domain, values, {}, reasons, 1)
    t = type(assertion)
    if t is AndAssertion or t is OrAssertion:
        parts = tuple(
            _plan_any(p, domain, values, reasons) for p in assertion.parts
        )
        kernel = _KAnd if t is AndAssertion else _KOr
        return lambda ev: kernel(tuple(part(ev) for part in parts))
    if t is NotAssertion:
        child = _plan_any(assertion.operand, domain, values, reasons)
        return lambda ev: _KNot(child(ev))
    if t is Cardinality:
        pred = assertion.pred
        return lambda ev: _KCard(pred)
    if t is ForallStates:
        pred = assertion.pred
        return lambda ev: _KForallPred(pred)
    if t is ExistsStates:
        pred = assertion.pred
        return lambda ev: _KExistsPred(pred)
    if t is ContainsState:
        target = assertion.state
        return lambda ev: _KMember(target)
    if t is EqualsSet:
        target = assertion.target
        return lambda ev: _KSetCmp(target, True, True)
    if t is SubsetOf:
        target = assertion.target
        return lambda ev: _KSetCmp(target, True, False)
    if t is SupersetOf:
        target = assertion.target
        return lambda ev: _KSetCmp(target, False, True)
    if t is ForallValue or t is ExistsValue:
        if len(assertion.indices) > EXPANSION_LIMIT:
            return _fallback_plan(
                assertion, domain, values, reasons,
                "indexed family larger than %d" % EXPANSION_LIMIT,
            )
        parts = tuple(
            _plan_any(assertion.family(x), domain, values, reasons)
            for x in assertion.indices
        )
        kernel = _KAnd if t is ForallValue else _KOr
        return lambda ev: kernel(tuple(part(ev) for part in parts))
    if t is SemAssertion:
        if assertion is TRUE_H:
            return lambda ev: _KConst(lambda: True)
        if assertion is FALSE_H:
            return lambda ev: _KConst(lambda: False)
        return _fallback_plan(
            assertion, domain, values, reasons,
            "opaque semantic predicate %r" % assertion.label,
        )
    return _fallback_plan(
        assertion, domain, values, reasons,
        "non-incremental combinator %s" % type(assertion).__name__,
    )


def _is_set_constant(assertion):
    """Whether the assertion's truth cannot depend on the set at all."""
    if isinstance(assertion, SynAssertion):
        return not _has_state_quant(assertion)
    if assertion is TRUE_H or assertion is FALSE_H:
        return True
    t = type(assertion)
    if t is AndAssertion or t is OrAssertion:
        return all(_is_set_constant(p) for p in assertion.parts)
    if t is NotAssertion:
        return _is_set_constant(assertion.operand)
    return False


# ---------------------------------------------------------------------------
# the public objects
# ---------------------------------------------------------------------------


class SetEvaluator:
    """Incremental evaluation of one assertion along a push/pop walk.

    The evaluator tracks a *multiset* of states (images overlap, so the
    engine's post-set unions push the same state repeatedly); kernels
    see only distinct-set transitions.  ``push``/``pop`` **must nest
    LIFO** — exactly how the engine's subset recursion uses them; the
    kernels' O(1) backtracking journals rely on it.
    """

    __slots__ = ("counts", "_stack", "_root", "_fast")

    def __init__(self, plan, fast=False):
        self.counts = {}
        self._stack = []
        self._root = plan(self)
        # fast mode skips the multiset bookkeeping entirely; only valid
        # when no kernel reads ``distinct`` (no whole-set fallbacks) AND
        # the caller uses the push_state/pop_state protocol
        self._fast = fast

    @property
    def distinct(self):
        """The current distinct set (a live view of the multiset keys)."""
        return self.counts

    def push_state(self, phi):
        """Push ``phi``, which the caller guarantees is not present.

        The engine's subset recursion qualifies: combination enumeration
        never repeats a state.  In fast mode this skips the multiset
        bookkeeping and feeds the kernels directly.
        """
        if self._fast:
            self._root.add(phi)
        else:
            self.push(phi)

    def pop_state(self, phi):
        """Undo the matching :meth:`push_state` (LIFO)."""
        if self._fast:
            self._root.remove(phi)
        else:
            self.pop()

    def push(self, phi):
        """Add one occurrence of ``phi`` to the multiset."""
        counts = self.counts
        count = counts.get(phi, 0) + 1
        counts[phi] = count
        self._stack.append(phi)
        if count == 1:
            self._root.add(phi)

    def push_many(self, phis):
        """Push every state of ``phis``; returns the count to pop."""
        counts = self.counts
        stack = self._stack
        root_add = self._root.add
        pushed = 0
        for phi in phis:
            count = counts.get(phi, 0) + 1
            counts[phi] = count
            stack.append(phi)
            if count == 1:
                root_add(phi)
            pushed += 1
        return pushed

    def pop(self):
        """Undo the most recent push."""
        counts = self.counts
        phi = self._stack.pop()
        count = counts[phi] - 1
        if count:
            counts[phi] = count
        else:
            del counts[phi]
            self._root.remove(phi)

    def pop_many(self, pushed):
        """Undo the ``pushed`` most recent pushes."""
        counts = self.counts
        stack = self._stack
        root_remove = self._root.remove
        for _ in range(pushed):
            phi = stack.pop()
            count = counts[phi] - 1
            if count:
                counts[phi] = count
            else:
                del counts[phi]
                root_remove(phi)

    def value(self):
        """Truth of the assertion on the current distinct set."""
        return bool(self._root.value())


class CompiledAssertion:
    """One assertion, compiled once for a fixed domain.

    ``holds(S)`` is compiled whole-set evaluation; ``evaluator()``
    builds a fresh :class:`SetEvaluator` for an enumeration walk.
    ``incremental`` is ``False`` when any subtree fell back to whole-set
    evaluation; the reasons are on :attr:`fallback_reasons`.
    """

    __slots__ = ("assertion", "domain", "fallback_reasons", "constant",
                 "_whole", "_plan")

    def __init__(self, assertion, domain):
        if not isinstance(assertion, Assertion):
            raise TypeError("not a hyper-assertion: %r" % (assertion,))
        self.assertion = assertion
        self.domain = domain
        values = tuple(domain) if domain is not None else ()
        reasons = []
        self._plan = _plan_any(assertion, domain, values, reasons)
        self._whole = _whole_any(assertion, domain, values)
        self.fallback_reasons = tuple(reasons)
        self.constant = _is_set_constant(assertion)

    @property
    def incremental(self):
        """Whether every subtree evaluates incrementally under push/pop."""
        return not self.fallback_reasons

    def holds(self, states):
        """Compiled whole-set evaluation (same verdicts as the
        interpreted ``assertion.holds(states, domain)``)."""
        return self._whole(frozenset(states))

    def evaluator(self):
        """A fresh incremental evaluator (empty set).

        Fully-incremental plans run the evaluator in fast mode: callers
        using the ``push_state``/``pop_state`` distinct-state protocol
        (the engine's subset recursion) bypass the multiset bookkeeping.
        """
        return SetEvaluator(self._plan, fast=not self.fallback_reasons)

    def __repr__(self):
        mode = "incremental" if self.incremental else (
            "whole-set fallback: %s" % "; ".join(self.fallback_reasons)
        )
        return "CompiledAssertion(%s, %s)" % (
            self.assertion.describe(),
            mode,
        )


def compile_assertion(assertion, domain, cache=None):
    """The :class:`CompiledAssertion` for ``(assertion, domain)``.

    Cached structurally for Def. 9 assertions (equal trees share one
    artifact) and by identity for semantic ones; ``cache`` defaults to
    the module-wide :func:`~repro.compile.cache.default_cache`.
    """
    if cache is None:
        cache = default_cache()

    def build():
        compiled = CompiledAssertion(assertion, domain)
        cache.record_fallback(compiled.fallback_reasons)
        return compiled

    return cache.get_or_build(("assertion", assertion, domain), build)


def _peel_state_prefix(node):
    """``([(polarity, name), ...], body)`` for a pure state-quantifier
    chain (alternation allowed), or ``None`` when the assertion is not a
    chain of state quantifiers over a state-quantifier-free body."""
    prefix = []
    while True:
        t = type(node)
        if t is SForallState:
            prefix.append((_FORALL, node.state))
        elif t is SExistsState:
            prefix.append((_EXISTS, node.state))
        else:
            break
        node = node.body
    if not prefix or _has_state_quant(node):
        return None
    if not isinstance(node, (SBool, SCmp, SAnd, SOr, SForallVal,
                             SExistsVal)):
        return None
    return prefix, node


class _MaskWhole:
    """Whole-set evaluation of a state-quantifier-prefix assertion over
    an id bitmask.

    This is the mask counterpart of the interpreter's nested-loop
    ``holds``: the quantifier prefix (alternation allowed — GNI's
    ``∀∀∃``, its violation's ``∃∃∀``) runs as nested loops over
    *prepared items*, the body is one generated code object
    (:class:`_BodyGen`) over item tuples, and each state's projections
    are computed **once per interned id for the lifetime of the
    universe** — across every candidate set the enumeration asks about —
    instead of re-walking the expression tree per tuple per candidate.
    Truth is iteration-order independent, so bit-scan id order replaces
    frozenset hash order without changing any verdict.
    """

    __slots__ = ("pols", "body", "prepare", "universe", "items")

    def __init__(self, pols, body, prepare, universe):
        self.pols = pols
        self.body = body
        self.prepare = prepare
        self.universe = universe
        self.items = []  # id -> prepared item, grown lazily

    def _pool(self, mask):
        items = self.items
        state_of = self.universe.state_of
        prepare = self.prepare
        out = []
        while mask:
            low = mask & -mask
            i = low.bit_length() - 1
            mask ^= low
            if i >= len(items):
                items.extend([None] * (i + 1 - len(items)))
            item = items[i]
            if item is None:
                item = prepare(state_of(i))
                items[i] = item
            out.append(item)
        return out

    def __call__(self, mask):
        pool = self._pool(mask)
        pols = self.pols
        body = self.body
        depth = len(pols)
        ts = [None] * depth

        def rec(k):
            if k == depth:
                return bool(body(ts))
            want = pols[k] == _EXISTS
            nxt = k + 1
            for item in pool:
                ts[k] = item
                if rec(nxt) == want:
                    return want
            return not want

        return rec(0)


def mask_prefix_fn(compiled, universe):
    """The :class:`_MaskWhole` evaluator for ``compiled`` over
    ``universe``'s interner, or ``None`` when the assertion is not a
    pure state-quantifier chain.

    The applicable shapes are exactly the alternating-prefix forms that
    force the whole-set fallback in the first place (GNI's ``∀∀∃``, its
    violation's ``∃∃∀``) — the engine calls this per candidate set
    instead of running any evaluator traffic for the assertion.
    """
    assertion = compiled.assertion
    domain = compiled.domain
    if not isinstance(assertion, SynAssertion):
        return None
    peeled = _peel_state_prefix(assertion)
    if peeled is None:
        return None
    prefix, body_node = peeled
    names = [name for _, name in prefix]
    if len(set(names)) != len(names):
        return None
    pols = tuple(q for q, _ in prefix)
    values = tuple(domain) if domain is not None else ()
    slots = {name: i for i, name in enumerate(names)}
    projections = _Projections()
    fast = _BodyGen(values, slots, projections, {}).compile(body_node)
    if projections.exprs:
        safe = _BodyGen(
            values, slots, _Projections(), {}, hoist=False
        ).compile(body_node)

        def body_fn(ts, _fast=fast, _safe=safe):
            try:
                return _fast(ts)
            except IndexError:
                return _safe(ts)

    else:
        body_fn = fast
    return _MaskWhole(pols, body_fn, projections.prepare_fn(), universe)


def compile_mask_fn(compiled, universe):
    """``mask -> bool`` whole-set evaluation of ``compiled`` over
    interned-id bitmasks of ``universe``.

    A pure state-quantifier prefix (the alternating forms that *cause*
    the fallback) evaluates natively over the mask through
    :func:`mask_prefix_fn`; any other shape decodes the mask at the
    boundary and reuses the compiled whole-set closure — never faster,
    never different.
    """
    fn = mask_prefix_fn(compiled, universe)
    if fn is not None:
        return fn
    whole = compiled.holds
    states_of = universe.states_of
    return lambda mask: whole(states_of(mask))


def compile_state_predicate(body, state_name, domain, cache=None):
    """``φ -> bool`` for a state-quantifier-free Def. 9 body with one
    bound state — the engine's precondition prefilter compiles its
    per-state pruning predicates through this."""
    if cache is None:
        cache = default_cache()
    values = tuple(domain) if domain is not None else ()

    def build():
        fn = _compile_syn(body, values)
        # fresh environment dicts per call: the cached predicate may be
        # shared across sessions and threads
        return lambda phi: bool(fn(_EMPTY_SET, {state_name: phi}, {}))

    return cache.get_or_build(("state-pred", body, state_name, domain), build)
