"""Concrete syntax for syntactic hyper-assertions (Def. 9).

ASCII grammar (the pretty-printer's unicode output has an ASCII twin via
:func:`format_assertion`, and the two round-trip)::

    A      ::= quant | imp
    quant  ::= ('forall'|'exists') binder (',' binder)* '.' A
    binder ::= '<' IDENT '>'        (state)  |  IDENT  (value)
    imp    ::= or ('==>' imp)?
    or     ::= and ('||' and)*
    and    ::= atom ('&&' atom)*
    atom   ::= 'true' | 'false' | '!' atom | '(' A ')' | e CMP e

    e      ::= term (('+'|'-') term)*
    term   ::= factor ('*' factor)*
    factor ::= INT | IDENT                       (bound value variable)
             | IDENT '(' IDENT ')'               (program lookup φ_P(x))
             | IDENT '_L' '(' IDENT ')'          (logical lookup φ_L(x))
             | '(' e ')'

Example::

    parse_assertion("forall <p>, <q>. p(x) == q(x)")      # low(x)
    parse_assertion("exists <p>. forall v. p(x) <= v")
"""

import re

from ..errors import ParseError
from .syntax import (
    HBin,
    HLit,
    HLog,
    HProg,
    HVar,
    SAnd,
    SBool,
    SCmp,
    SExistsState,
    SExistsVal,
    SForallState,
    SForallVal,
    SOr,
    simplies,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
    | (?P<int>\d+)
    | (?P<ident>[A-Za-z_α-ωφ][A-Za-z_0-9'α-ωφ]*)
    | (?P<sym>==>|==|!=|<=|>=|\|\||&&|[.,()<>!+\-*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"forall", "exists", "true", "false"}
_CMPS = ("==", "!=", "<=", ">=", "<", ">")


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError("unexpected character %r" % text[pos], pos, text)
        if m.lastgroup != "ws":
            tokens.append((m.lastgroup, m.group(), m.start()))
        pos = m.end()
    tokens.append(("eof", "", len(text)))
    return tokens


class _AParser:
    def __init__(self, text):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        self.states = []  # names bound as states (innermost last)
        self.values = []  # names bound as values

    def peek(self):
        return self.tokens[self.pos]

    def at(self, value):
        return self.peek()[1] == value and value != ""

    def accept(self, value):
        if self.at(value):
            self.pos += 1
            return True
        return False

    def expect(self, value):
        if not self.accept(value):
            _, text, offset = self.peek()
            raise ParseError(
                "expected %r, found %r" % (value, text or "end of input"),
                offset,
                self.text,
            )

    def ident(self):
        kind, text, offset = self.peek()
        if kind != "ident" or text in _KEYWORDS:
            raise ParseError("expected identifier, found %r" % text, offset, self.text)
        self.pos += 1
        return text

    # -- assertions -----------------------------------------------------
    def assertion(self):
        _, text, _ = self.peek()
        if text in ("forall", "exists"):
            return self.quantified()
        return self.implication()

    def quantified(self):
        universal = self.accept("forall")
        if not universal:
            self.expect("exists")
        binders = [self.binder()]
        while self.accept(","):
            binders.append(self.binder())
        self.expect(".")
        for is_state, name in binders:
            (self.states if is_state else self.values).append(name)
        body = self.assertion()
        for is_state, name in reversed(binders):
            if is_state:
                self.states.remove(name)
                body = (SForallState if universal else SExistsState)(name, body)
            else:
                self.values.remove(name)
                body = (SForallVal if universal else SExistsVal)(name, body)
        return body

    def binder(self):
        if self.accept("<"):
            name = self.ident()
            self.expect(">")
            return True, name
        return False, self.ident()

    def implication(self):
        left = self.disjunction()
        if self.accept("==>"):
            return simplies(left, self.implication())
        return left

    def disjunction(self):
        out = self.conjunction()
        while self.accept("||"):
            out = SOr(out, self.conjunction())
        return out

    def conjunction(self):
        out = self.atom()
        while self.accept("&&"):
            out = SAnd(out, self.atom())
        return out

    def atom(self):
        if self.accept("true"):
            return SBool(True)
        if self.accept("false"):
            return SBool(False)
        if self.accept("!"):
            return self.atom().negate()
        _, text, _ = self.peek()
        if text in ("forall", "exists"):
            return self.quantified()
        saved = self.pos
        if self.accept("("):
            # could be a grouped assertion or a parenthesized expression
            try:
                inner = self.assertion()
                self.expect(")")
                kind, nxt, _ = self.peek()
                if nxt not in _CMPS:
                    return inner
            except ParseError:
                pass
            self.pos = saved
        left = self.expr()
        kind, op, offset = self.peek()
        if op not in _CMPS:
            raise ParseError("expected comparison, found %r" % op, offset, self.text)
        self.pos += 1
        right = self.expr()
        out = SCmp(op, left, right)
        # chained comparisons: a <= b <= c
        while self.peek()[1] in _CMPS:
            op2 = self.peek()[1]
            self.pos += 1
            nxt = self.expr()
            out = SAnd(out, SCmp(op2, right, nxt))
            right = nxt
        return out

    # -- hyper-expressions ----------------------------------------------
    def expr(self):
        out = self.term()
        while True:
            if self.accept("+"):
                out = HBin("+", out, self.term())
            elif self.accept("-"):
                out = HBin("-", out, self.term())
            else:
                return out

    def term(self):
        out = self.factor()
        while self.accept("*"):
            out = HBin("*", out, self.factor())
        return out

    def factor(self):
        kind, text, offset = self.peek()
        if kind == "int":
            self.pos += 1
            return HLit(int(text))
        if self.accept("("):
            out = self.expr()
            self.expect(")")
            return out
        name = self.ident()
        # logical lookup: φ_L(x) written name_L(x)
        if name.endswith("_L") and name[:-2] in self.states and self.at("("):
            self.expect("(")
            var = self.ident()
            self.expect(")")
            return HLog(name[:-2], var)
        if name in self.states:
            self.expect("(")
            var = self.ident()
            self.expect(")")
            return HProg(name, var)
        if name in self.values:
            return HVar(name)
        raise ParseError(
            "unbound name %r (not a quantified state or value)" % name,
            offset,
            self.text,
        )

    def done(self):
        kind, text, offset = self.peek()
        if kind != "eof":
            raise ParseError("trailing input %r" % text, offset, self.text)


def parse_assertion(text):
    """Parse a syntactic hyper-assertion from concrete syntax."""
    p = _AParser(text)
    out = p.assertion()
    p.done()
    return out


# ---------------------------------------------------------------------------
# the ASCII formatter (round-trips with parse_assertion)
# ---------------------------------------------------------------------------


def _format_expr(expr):
    if isinstance(expr, HLit):
        return str(expr.value)
    if isinstance(expr, HVar):
        return expr.name
    if isinstance(expr, HProg):
        return "%s(%s)" % (expr.state, expr.var)
    if isinstance(expr, HLog):
        return "%s_L(%s)" % (expr.state, expr.var)
    if isinstance(expr, HBin):
        if expr.op in ("+", "-", "*"):
            return "(%s %s %s)" % (_format_expr(expr.left), expr.op, _format_expr(expr.right))
        raise ParseError("operator %r has no concrete syntax" % expr.op)
    raise ParseError("no concrete syntax for %r" % (expr,))


def _format_operand(assertion):
    """Format a connective operand; a quantifier's body extends maximally,
    so quantified operands need explicit grouping parentheses."""
    text = format_assertion(assertion)
    if isinstance(assertion, (SForallVal, SExistsVal, SForallState, SExistsState)):
        return "(%s)" % text
    return text


def format_assertion(assertion):
    """ASCII concrete syntax, parseable by :func:`parse_assertion`."""
    if isinstance(assertion, SBool):
        return "true" if assertion.value else "false"
    if isinstance(assertion, SCmp):
        return "%s %s %s" % (
            _format_expr(assertion.left),
            assertion.op,
            _format_expr(assertion.right),
        )
    if isinstance(assertion, SAnd):
        return "(%s && %s)" % (
            _format_operand(assertion.left),
            _format_operand(assertion.right),
        )
    if isinstance(assertion, SOr):
        return "(%s || %s)" % (
            _format_operand(assertion.left),
            _format_operand(assertion.right),
        )
    if isinstance(assertion, SForallVal):
        return "forall %s. %s" % (assertion.var, format_assertion(assertion.body))
    if isinstance(assertion, SExistsVal):
        return "exists %s. %s" % (assertion.var, format_assertion(assertion.body))
    if isinstance(assertion, SForallState):
        return "forall <%s>. %s" % (assertion.state, format_assertion(assertion.body))
    if isinstance(assertion, SExistsState):
        return "exists <%s>. %s" % (assertion.state, format_assertion(assertion.body))
    raise ParseError("no concrete syntax for %r" % (assertion,))
