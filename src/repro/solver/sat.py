"""A DPLL SAT solver.

Classic DPLL: exhaustive unit propagation, pure-literal elimination at the
root, and splitting on the most frequent unassigned literal.  The split
search runs on an explicit stack rather than Python recursion, so deep
splits on hundreds of variables cannot hit the interpreter's recursion
limit.  Deliberately simple — the grounded entailment queries this
library produces are small (hundreds of variables), and the solver is
cross-validated against brute-force truth-table enumeration in
``tests/solver/test_sat.py``.
"""

from collections import defaultdict

from ..errors import SolverError


class SATSolver:
    """Decide satisfiability of a CNF given as integer-literal clauses."""

    def __init__(self, clauses, num_vars):
        self.num_vars = num_vars
        self.clauses = []
        for clause in clauses:
            clause = tuple(dict.fromkeys(clause))
            if any(-lit in clause for lit in clause):
                continue  # tautology
            self.clauses.append(clause)
        self.stats = {"decisions": 0, "propagations": 0, "pure_literals": 0}

    def solve(self, max_decisions=5_000_000):
        """A satisfying assignment ``{var: bool}`` or ``None`` if UNSAT."""
        self._max_decisions = max_decisions
        root = self._propagate({})
        if root is None:
            return None
        self._eliminate_pure_literals(root)
        result = self._search(root)
        if result is None:
            return None
        # complete the assignment for unconstrained variables
        for v in range(1, self.num_vars + 1):
            result.setdefault(v, False)
        return result

    # -- internals ----------------------------------------------------------

    def _eliminate_pure_literals(self, assign):
        """Assign every pure literal (one polarity only), to fixpoint.

        Setting a literal whose complement never occurs in an unsatisfied
        clause preserves satisfiability (it can only satisfy clauses);
        doing so may expose further pure literals, hence the loop.
        Mutates ``assign`` in place — pure assignments can never conflict.
        """
        while True:
            polarity = set()
            for clause in self.clauses:
                if any(assign.get(abs(l)) == (l > 0) for l in clause):
                    continue
                for lit in clause:
                    if abs(lit) not in assign:
                        polarity.add(lit)
            pures = [lit for lit in polarity if -lit not in polarity]
            if not pures:
                return
            for lit in pures:
                assign[abs(lit)] = lit > 0
                self.stats["pure_literals"] += 1

    def _search(self, assign):
        """DPLL split search on an explicit stack (no Python recursion)."""
        stack = [assign]
        while stack:
            current = self._propagate(stack.pop())
            if current is None:
                continue
            lit = self._choose_literal(current)
            if lit is None:
                return current
            self.stats["decisions"] += 1
            if self.stats["decisions"] > self._max_decisions:
                raise SolverError("decision budget exhausted")
            # pushed in reverse so the positive phase is explored first,
            # matching the order of the old recursive search
            for choice in (-lit, lit):
                trial = dict(current)
                trial[abs(choice)] = choice > 0
                stack.append(trial)
        return None

    def _propagate(self, assign):
        """Unit propagation to fixpoint; None on conflict."""
        assign = dict(assign)
        changed = True
        while changed:
            changed = False
            for clause in self.clauses:
                unassigned = None
                satisfied = False
                count = 0
                for lit in clause:
                    value = assign.get(abs(lit))
                    if value is None:
                        unassigned = lit
                        count += 1
                        if count > 1:
                            break
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if count == 0:
                    return None  # conflict
                if count == 1:
                    assign[abs(unassigned)] = unassigned > 0
                    self.stats["propagations"] += 1
                    changed = True
        return assign

    def _choose_literal(self, assign):
        counts = defaultdict(int)
        for clause in self.clauses:
            if any(assign.get(abs(lit)) == (lit > 0) for lit in clause):
                continue
            for lit in clause:
                if abs(lit) not in assign:
                    counts[lit] += 1
        if not counts:
            return None
        return max(counts, key=counts.get)


def solve_cnf(cnf):
    """Solve a :class:`~repro.solver.cnf.CNF`; returns assignment or None."""
    solver = SATSolver(cnf.clauses, cnf.num_vars)
    return solver.solve()


def solve_formula(formula):
    """Satisfiability of a propositional formula.

    Returns an atom assignment (dict) or ``None`` when unsatisfiable.
    """
    from .cnf import tseitin

    cnf = tseitin(formula)
    model = solve_cnf(cnf)
    if model is None:
        return None
    return cnf.decode(model)
