"""Assertion sugar builders and entailment checking."""

import pytest

from repro.assertions import (
    AssumingOracle,
    EntailmentOracle,
    agree_on,
    box,
    diamond,
    differing_highs,
    emp_s,
    entails,
    equivalent,
    find_entailment_counterexample,
    gni,
    gni_violation,
    has_min,
    low,
    low_pred,
    mono,
    not_emp_s,
    satisfiable,
)
from repro.errors import EntailmentError
from repro.lang.expr import V
from repro.semantics.state import ExtState, State
from repro.values import IntRange

D = IntRange(0, 1)


def phi(h, l, t=None):
    log = {} if t is None else {"t": t}
    return ExtState(State(log), State({"h": h, "l": l}))


ALL = [phi(h, l) for h in (0, 1) for l in (0, 1)]


class TestSugar:
    def test_low(self):
        assert low("l").holds({phi(0, 1), phi(1, 1)}, D)
        assert not low("l").holds({phi(0, 0), phi(0, 1)}, D)
        assert low("l").holds(frozenset(), D)

    def test_low_pred(self):
        cond = V("l").gt(0)
        assert low_pred(cond).holds({phi(0, 1), phi(1, 1)}, D)
        assert not low_pred(cond).holds({phi(0, 0), phi(1, 1)}, D)

    def test_box_diamond(self):
        cond = V("h").eq(0)
        assert box(cond).holds({phi(0, 0), phi(0, 1)}, D)
        assert not box(cond).holds({phi(1, 0)}, D)
        assert diamond(cond).holds({phi(1, 0), phi(0, 1)}, D)
        assert not diamond(cond).holds({phi(1, 0)}, D)

    def test_emp_notemp(self):
        assert emp_s.holds(frozenset(), D)
        assert not emp_s.holds({phi(0, 0)}, D)
        assert not_emp_s.holds({phi(0, 0)}, D)

    def test_gni_and_violation_are_complements_here(self):
        s = {phi(0, 0), phi(1, 1)}
        assert gni("h", "l").holds(s, D) != gni_violation("h", "l").holds(s, D)

    def test_gni_satisfied_by_full_rectangle(self):
        s = {phi(h, l) for h in (0, 1) for l in (0, 1)}
        assert gni("h", "l").holds(s, D)

    def test_differing_highs(self):
        assert differing_highs("h").holds({phi(0, 0), phi(1, 0)}, D)
        assert not differing_highs("h").holds({phi(1, 0), phi(1, 1)}, D)

    def test_mono_uses_logical_tags(self):
        s = {phi(0, 1, t=1), phi(0, 0, t=2)}
        assert mono("t", "l").holds(s, D)
        s_bad = {phi(0, 0, t=1), phi(0, 1, t=2)}
        assert not mono("t", "l").holds(s_bad, D)

    def test_has_min(self):
        assert has_min("l").holds({phi(0, 0), phi(1, 1)}, D)
        assert not has_min("l").holds(frozenset(), D)

    def test_agree_on(self):
        assert agree_on(["h", "l"]).holds({phi(1, 0), phi(1, 0)}, D)
        assert not agree_on(["h", "l"]).holds({phi(1, 0), phi(0, 0)}, D)
        assert agree_on([]).holds({phi(0, 0), phi(1, 1)}, D)


class TestEntailment:
    def test_entails_positive(self):
        assert entails(emp_s, low("l"), ALL, D)
        assert entails(box(V("l").eq(0)), low("l"), ALL, D)

    def test_entails_negative_with_counterexample(self):
        assert not entails(not_emp_s, low("l"), ALL, D)
        cex = find_entailment_counterexample(not_emp_s, low("l"), ALL, D)
        assert cex is not None
        assert not_emp_s.holds(cex, D) and not low("l").holds(cex, D)

    def test_equivalent(self):
        a = box(V("l").eq(0)) & box(V("h").eq(0))
        b = box((V("l").eq(0)) & (V("h").eq(0)))
        assert equivalent(a, b, ALL, D)
        assert not equivalent(a, box(V("l").eq(0)), ALL, D)

    def test_satisfiable(self):
        assert satisfiable(low("l"), ALL, D)
        assert not satisfiable(emp_s & not_emp_s, ALL, D)

    def test_oracle_require_raises(self):
        oracle = EntailmentOracle(ALL, D)
        with pytest.raises(EntailmentError):
            oracle.require(not_emp_s, low("l"), "test")

    def test_oracle_entails_bool(self):
        oracle = EntailmentOracle(ALL, D)
        assert oracle.entails(emp_s, low("l"))
        assert not oracle.entails(not_emp_s, low("l"))

    def test_assuming_oracle_records(self):
        oracle = AssumingOracle()
        assert oracle.require(not_emp_s, low("l"), "bogus")
        assert len(oracle.assumed) == 1

    def test_sat_method_agrees_with_brute(self):
        brute = EntailmentOracle(ALL, D, method="brute")
        sat = EntailmentOracle(ALL, D, method="sat")
        cases = [
            (box(V("l").eq(0)), low("l")),
            (not_emp_s, low("l")),
            (low("l") & low("h"), agree_on(["h", "l"])),
        ]
        for pre, post in cases:
            assert brute.entails(pre, post) == sat.entails(pre, post)

    def test_sat_method_falls_back_for_semantic(self):
        from repro.assertions.semantic import TRUE_H

        sat = EntailmentOracle(ALL, D, method="sat")
        # OTimes and friends are not groundable; oracle must still answer
        assert sat.entails(TRUE_H, TRUE_H)


class TestMethodTracking:
    """The oracle must report which method *actually* decided each query
    (a sat oracle silently degrades to brute on non-groundable operands)."""

    def test_sat_query_records_sat(self):
        sat = EntailmentOracle(ALL, D, method="sat")
        sat.entails(box(V("l").eq(0)), low("l"))
        assert sat.last_method == "sat"
        assert sat.used_since() == ("sat",)

    def test_fallback_records_brute_not_sat(self):
        from repro.assertions.semantic import TRUE_H

        sat = EntailmentOracle(ALL, D, method="sat")
        sat.entails(TRUE_H, TRUE_H)
        assert sat.last_method == "brute"
        assert sat.used_since() == ("brute",)

    def test_used_since_mark_and_order(self):
        from repro.assertions.semantic import TRUE_H

        sat = EntailmentOracle(ALL, D, method="sat")
        sat.entails(box(V("l").eq(0)), low("l"))
        mark = sat.used_mark()
        sat.entails(TRUE_H, TRUE_H)
        sat.entails(not_emp_s, low("l"))
        assert sat.used_since(mark) == ("brute", "sat")
        assert sat.used_since() == ("sat", "brute")

    def test_reset_used(self):
        brute = EntailmentOracle(ALL, D)
        brute.entails(emp_s, low("l"))
        brute.reset_used()
        assert brute.used_since() == ()
        assert brute.used_mark() == 0

    def test_assuming_oracle_records_assume(self):
        oracle = AssumingOracle()
        oracle.entails(not_emp_s, low("l"))
        assert oracle.last_method == "assume"

    def test_universe_sorted_once_and_reused(self):
        oracle = EntailmentOracle(ALL, D)
        assert oracle.universe == tuple(sorted(ALL, key=repr))
        cex = oracle.find_counterexample(not_emp_s, low("l"))
        assert cex is not None and not low("l").holds(cex, D)
        assert oracle.satisfiable(low("l"))
        assert not oracle.satisfiable(emp_s & not_emp_s)
