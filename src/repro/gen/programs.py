"""Seeded generators for domain-safe commands and expressions.

Every generator takes an explicit :class:`random.Random` and a
:class:`~repro.gen.config.GenConfig`; drawing order is part of the
determinism contract (reordering draws changes what a seed generates, so
additions must only ever *append* new kinds behind new config gates).

*Domain-safe* means: every expression assigned to a variable clamps back
into ``[config.lo, config.hi]`` via ``max(lo, min(hi, e))``, so the
reachable state space of any generated command — including under
``Iter`` — is a subset of the finite universe and the exact big-step
fixpoint terminates.
"""

from ..lang.ast import Assign, Assume, Choice, Havoc, Iter, Seq, Skip
from ..lang.expr import BinOp, Cmp, Lit, Var

#: Comparison operators generated for ``assume`` conditions.
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def clamped(expr, lo, hi):
    """Clamp ``expr`` into ``[lo, hi]``: ``max(lo, min(hi, expr))``."""
    return BinOp("max", Lit(lo), BinOp("min", Lit(hi), expr))


def gen_safe_expr(rng, config):
    """An expression whose value stays inside the configured domain."""
    kind = rng.choice(("lit", "var", "inc", "dec", "add"))
    if kind == "lit":
        return Lit(rng.randint(config.lo, config.hi))
    if kind == "var":
        return Var(rng.choice(config.pvars))
    if kind == "inc":
        return clamped(
            BinOp("+", Var(rng.choice(config.pvars)), Lit(1)), config.lo, config.hi
        )
    if kind == "dec":
        return clamped(
            BinOp("-", Var(rng.choice(config.pvars)), Lit(1)), config.lo, config.hi
        )
    return clamped(
        BinOp("+", Var(rng.choice(config.pvars)), Var(rng.choice(config.pvars))),
        config.lo,
        config.hi,
    )


def gen_condition(rng, config):
    """A comparison between a variable and a literal or variable."""
    left = Var(rng.choice(config.pvars))
    op = rng.choice(CMP_OPS)
    if rng.random() < 0.5:
        right = Lit(rng.randint(config.lo, config.hi))
    else:
        right = Var(rng.choice(config.pvars))
    return Cmp(op, left, right)


def gen_atomic_command(rng, config):
    """One of ``skip``, assignment, havoc, ``assume``."""
    kind = rng.choice(("skip", "assign", "havoc", "assume"))
    if kind == "skip":
        return Skip()
    if kind == "assign":
        return Assign(rng.choice(config.pvars), gen_safe_expr(rng, config))
    if kind == "havoc":
        return Havoc(rng.choice(config.pvars))
    return Assume(gen_condition(rng, config))


def gen_command(rng, config, max_depth=None, allow_iter=None):
    """A domain-safe random command.

    ``max_depth``/``allow_iter`` default to the config's values;
    ``Iter`` bodies are generated loop-free (one nesting level), matching
    the retired Hypothesis strategy and keeping fixpoints cheap.
    """
    if max_depth is None:
        max_depth = config.max_command_depth
    if allow_iter is None:
        allow_iter = config.allow_iter
    if max_depth <= 0:
        return gen_atomic_command(rng, config)
    kinds = ["atomic", "seq", "choice"]
    if allow_iter:
        kinds.append("iter")
    kind = rng.choice(kinds)
    if kind == "atomic":
        return gen_atomic_command(rng, config)
    if kind == "seq":
        return Seq(
            gen_command(rng, config, max_depth - 1, allow_iter),
            gen_command(rng, config, max_depth - 1, allow_iter),
        )
    if kind == "choice":
        return Choice(
            gen_command(rng, config, max_depth - 1, allow_iter),
            gen_command(rng, config, max_depth - 1, allow_iter),
        )
    return Iter(gen_command(rng, config, max_depth - 1, allow_iter=False))


def gen_loop_free(rng, config, max_depth=None):
    """A command without ``Iter`` (for termination-sensitive workloads)."""
    return gen_command(rng, config, max_depth=max_depth, allow_iter=False)


def gen_straightline(rng, config, max_len=4):
    """A right-nested ``Seq`` chain of atomics (the syntactic-wp fragment)."""
    parts = [gen_atomic_command(rng, config) for _ in range(rng.randint(1, max_len))]
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = Seq(part, out)
    return out
