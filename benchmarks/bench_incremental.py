"""Incremental re-verification: reverify-after-edit vs a cold run.

The CI-at-scale workload the :mod:`repro.deps` subsystem targets: a
long-lived session has verified an N-triple suite, one subtree of one
task changes, and the whole suite is re-verified.  The structural
fingerprint ledger lets ``Session.reverify`` return the N-1 untouched
outcomes without re-running anything, and dependency-cone invalidation
drops exactly the artifacts derived from the edited subtree — so the
incremental run should cost roughly one task, not N.

This benchmark (a plain script, so CI can smoke-run it):

1. verifies an N-triple generated suite in a warm session,
2. replaces one task's command with a freshly generated one,
3. times ``reverify(edited, changed=[old command])`` against a cold
   ``verify_many`` of the edited suite in a brand-new session,
4. cross-validates that both runs return identical verdicts and
   methods, and that the reverify report counts N-1 fingerprint hits,
5. asserts the incremental run is >= 5x faster (>= 3x in ``--quick``
   mode, where the suite is small enough that fixed costs bite).

Usage::

    python benchmarks/bench_incremental.py            # full workload
    python benchmarks/bench_incremental.py --quick    # CI smoke
"""

import argparse
import os
import random
import sys
import time
from dataclasses import replace

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.api import Session  # noqa: E402
from repro.deps import fingerprint, task_dependencies  # noqa: E402
from repro.gen import GenConfig, trials  # noqa: E402
from repro.gen.programs import gen_command  # noqa: E402

MIN_SPEEDUP = 5.0
MIN_SPEEDUP_QUICK = 3.0

#: 3 program variables over {0, 1}: 8 extended states, 256 candidate
#: initial sets per exhaustive task — enough per-task work that the
#: cold run's cost is verification, not parsing.
PVARS = ("x", "y", "z")
SEED = 7


def build_suite(session, count):
    config = GenConfig(pvars=PVARS, lo=0, hi=1, max_command_depth=3)
    return [
        session.task(t.triple.pre, t.triple.command, t.triple.post,
                     invariant=t.triple.invariant)
        for t in trials(SEED, count, config, loop_bias=0.0)
    ]


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def bench(count, min_speedup):
    warm = Session(PVARS, lo=0, hi=1)
    suite = build_suite(warm, count)
    warm_t, _ = timed(lambda: warm.verify_many(suite))

    # the edit script: one task's command is regenerated wholesale.  The
    # victim must have a structurally *unique* command — invalidation is
    # by content, so editing a command shared verbatim by other tasks
    # (tiny generated programs repeat) would correctly, conservatively
    # invalidate those tasks too and muddy the N-1 reuse measurement.
    rng = random.Random(SEED ^ 0xED17)
    config = GenConfig(pvars=PVARS, lo=0, hi=1, max_command_depth=3)
    victim = next(
        i for i, t in enumerate(suite)
        if not any(
            fingerprint(t.command) in task_dependencies(other)
            for j, other in enumerate(suite) if j != i
        )
    )
    old = suite[victim]
    edited = list(suite)
    edited[victim] = replace(old, command=gen_command(rng, config))

    inc_t, inc_r = timed(lambda: warm.reverify(edited, changed=[old.command]))
    cold = Session(PVARS, lo=0, hi=1)
    cold_t, cold_r = timed(lambda: cold.verify_many(edited))

    same = [r.verdict for r in inc_r] == [r.verdict for r in cold_r] and [
        r.method for r in inc_r
    ] == [r.method for r in cold_r]
    assert same, "incremental reverify diverged from the cold run"
    assert inc_r.fingerprint_hits == count - 1, (
        "expected %d fingerprint hits for a single-task edit, got %d"
        % (count - 1, inc_r.fingerprint_hits)
    )
    assert inc_r.cone_invalidations > 0, (
        "the declared edit invalidated no artifacts"
    )
    print("cross-validation: verdicts+methods identical, %d/%d outcomes "
          "reused, %d artifacts invalidated: OK"
          % (inc_r.fingerprint_hits, count, inc_r.cone_invalidations))

    speedup = cold_t / inc_t if inc_t else float("inf")
    print()
    print("suite: %d tasks, 1 command edited" % count)
    print("  initial warm verify_many:        %8.3fs  %6.1f tasks/s" % (warm_t, count / warm_t))
    print("  cold verify_many (edited suite): %8.3fs  %6.1f tasks/s" % (cold_t, count / cold_t))
    print("  reverify(changed=[old command]): %8.3fs  %6.1f tasks/s" % (inc_t, count / inc_t))
    print("  speedup (cold vs reverify):      %8.1fx" % speedup)
    assert speedup >= min_speedup, (
        "expected reverify >= %.1fx faster than a cold run, measured %.1fx"
        % (min_speedup, speedup)
    )
    print("speedup >= %.1fx: OK" % min_speedup)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload (CI smoke mode)"
    )
    parser.add_argument(
        "--tasks", type=int, help="suite size (default: 200, quick: 60)"
    )
    args = parser.parse_args(argv)
    tasks = args.tasks if args.tasks is not None else (60 if args.quick else 200)
    min_speedup = MIN_SPEEDUP_QUICK if args.quick else MIN_SPEEDUP

    print("=" * 64)
    print("incremental re-verification benchmark (%s)"
          % ("quick" if args.quick else "full"))
    print("=" * 64)
    bench(tasks, min_speedup)


if __name__ == "__main__":
    main()
