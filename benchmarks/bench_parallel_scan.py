"""Intra-task parallelism: the partitioned mask-space scan at scale.

The workload is the regime the partitioned scan was built for — one
*large* always-valid triple: 4 program variables over {0, 1} give 16
extended states and a full 65536-candidate enumeration with no early
exit, so a serial oracle pins exactly one core for the whole scan.
``CheckerEngine(parallel=P)`` tiles the candidate-index space across a
persistent process pool (the image table is still executed once, in the
parent) and merges to the canonical verdict.

This benchmark (a plain script, so CI can smoke-run it) does two
things:

1. **cross-validation** — the parallel verdict, witness and
   ``checked_sets`` must be byte-identical to the serial scan's, at
   every worker count (the same guarantee the ``parallel-vs-sequential``
   fuzz check enforces trial-by-trial);
2. **scaling** — wall time at 4 workers must beat the serial scan by
   >= 2x.  The assertion only arms when the machine exposes >= 4 CPUs
   (on fewer cores the law of physics wins and the measured ratio is
   reported without failing the build — same skip pattern as
   ``bench_fuzz_shard.py``).

Usage::

    python benchmarks/bench_parallel_scan.py            # full workload
    python benchmarks/bench_parallel_scan.py --quick    # CI smoke
"""

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.assertions.parser import parse_assertion  # noqa: E402
from repro.checker.engine import CheckerEngine, ImageCache  # noqa: E402
from repro.checker.universe import Universe  # noqa: E402
from repro.compile.cache import CompileCache  # noqa: E402
from repro.lang.parser import parse_command  # noqa: E402
from repro.values import IntRange  # noqa: E402

MIN_SCALING = 2.0
WORKER_COUNTS = (1, 2, 4)

#: 4 program variables over {0, 1}: 16 extended states, 65536 candidate
#: initial sets.  The precondition accepts everything and the
#: postcondition holds universally, so every scan is a full enumeration
#: — the no-early-exit worst case a single core used to be stuck with.
PVARS = ("w", "x", "y", "z")
PRE = "true"
POST = "forall <a>. forall <b>. a(x) + b(y) >= 0"
#: The command steps outside the declared {0, 1} grid (x can reach 2),
#: so the bench also exercises the out-of-grid intern-table replay the
#: workers perform before scanning.
PROGRAM = "x := x + y; w := nonDet()"


def build_engines():
    """One engine per worker count, all sharing one image/compile cache.

    Sharing the caches mirrors production (a session's serial and
    parallel scans see the same image table) and keeps the comparison
    about the scan itself, not about cold image execution.
    """
    universe = Universe(PVARS, IntRange(0, 1))
    images = ImageCache()
    compiles = CompileCache()
    engines = {}
    for workers in WORKER_COUNTS:
        engines[workers] = CheckerEngine(
            universe,
            images,
            compile_cache=compiles,
            # workers=1 is the serial baseline: the engine coerces
            # parallel<2 to None, so no pool is ever built for it
            parallel=workers,
            parallel_min_candidates=0,
        )
    return engines


def timed_scan(engine, pre, command, post, reps):
    started = time.perf_counter()
    result = None
    for _ in range(reps):
        result = engine.check(pre, command, post)
    return time.perf_counter() - started, result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="single repetition (CI smoke mode)"
    )
    parser.add_argument(
        "--reps", type=int, help="scan repetitions per worker count "
        "(default: 3, quick: 1)"
    )
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)

    pre = parse_assertion(PRE)
    post = parse_assertion(POST)
    command = parse_command(PROGRAM)
    engines = build_engines()

    print("=" * 64)
    print("parallel scan benchmark (%s)" % ("quick" if args.quick else "full"))
    print("=" * 64)
    print(
        "workload: {%s} %s {%s}" % (PRE, PROGRAM, POST)
    )
    print(
        "  %d extended states, 65536 candidate sets, no early exit, "
        "%d rep(s) per worker count" % (2 ** len(PVARS), reps)
    )

    # warmup: populate the shared image cache and spawn each pool once,
    # so the timed runs measure the scan, not process startup
    baseline = engines[1].check(pre, command, post)
    for workers in WORKER_COUNTS[1:]:
        warm = engines[workers].check(pre, command, post)
        same = (
            warm.valid == baseline.valid
            and warm.witness_pre == baseline.witness_pre
            and warm.witness_post == baseline.witness_post
            and warm.checked_sets == baseline.checked_sets
        )
        assert same, (
            "parallel scan (%d workers) diverged from the serial scan"
            % workers
        )
    assert baseline.valid and baseline.checked_sets == 65536
    print("cross-validation: verdict/witness/checked_sets identical at "
          "1/2/4 workers: OK")
    print()

    elapsed = {}
    for workers in WORKER_COUNTS:
        elapsed[workers], result = timed_scan(
            engines[workers], pre, command, post, reps
        )
        rate = reps * result.checked_sets / elapsed[workers]
        label = "serial scan" if workers == 1 else "%d workers" % workers
        print("  %-14s %8.3fs  %10.0f candidates/s"
              % (label + ":", elapsed[workers], rate))

    scaling = elapsed[1] / elapsed[4] if elapsed[4] else float("inf")
    cpus = os.cpu_count() or 1
    print("  scaling (4 workers vs serial):   %.2fx  (%d CPUs visible)"
          % (scaling, cpus))
    if cpus >= 4:
        assert scaling >= MIN_SCALING, (
            "expected >= %.1fx wall-time scaling with 4 workers on %d CPUs, "
            "measured %.2fx" % (MIN_SCALING, cpus, scaling)
        )
        print("scaling >= %.1fx: OK" % MIN_SCALING)
    else:
        print(
            "scaling assertion skipped: %d CPU(s) < 4 workers "
            "(ratio reported for the record)" % cpus
        )
    for engine in engines.values():
        engine.close()


if __name__ == "__main__":
    main()
