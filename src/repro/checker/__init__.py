"""The semantic oracle: finite universes and exhaustive triple checking."""

from .universe import Universe, small_universe
from .engine import (
    CheckerEngine,
    CheckResult,
    ImageCache,
    candidate_initial_sets,
    state_prefilter,
)
from .validity import (
    check_triple,
    valid_triple,
    check_terminating_triple,
    valid_terminating_triple,
    sampled_check_triple,
    naive_check_triple,
    naive_check_terminating_triple,
    naive_sampled_check_triple,
)
from .counterexample import (
    Witness,
    find_counterexample,
    explain_counterexample,
    minimal_counterexample,
)

__all__ = [
    "Universe",
    "small_universe",
    "CheckerEngine",
    "CheckResult",
    "ImageCache",
    "candidate_initial_sets",
    "state_prefilter",
    "check_triple",
    "valid_triple",
    "check_terminating_triple",
    "valid_terminating_triple",
    "sampled_check_triple",
    "naive_check_triple",
    "naive_check_terminating_triple",
    "naive_sampled_check_triple",
    "Witness",
    "find_counterexample",
    "explain_counterexample",
    "minimal_counterexample",
]
