"""Golden wire-format fixtures: the codec's cross-release contract.

Each file under ``tests/codec/goldens/`` pins the exact document one
representative object encodes to.  The CI check is this test module:

- if a freshly-encoded document differs from its golden while
  ``schema_version`` is unchanged, the wire format drifted without a
  version bump → **fail** (bump :data:`repro.codec.SCHEMA_VERSION` and
  regenerate);
- if the goldens were recorded under a different ``schema_version``
  than the library now speaks, they are stale → **fail** (regenerate).

Regenerate (after bumping ``SCHEMA_VERSION`` deliberately) with::

    PYTHONPATH=src python tests/codec/test_golden.py --regen

Timings are zeroed before comparison (``elapsed`` is measurement, not
format), and witness state sets encode in canonical order, so the
builders are deterministic across runs, platforms and hash seeds.
"""

import json
import os
import sys

import pytest

if __name__ == "__main__":  # --regen mode, run as a script
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "src",
        ),
    )

from repro.api import Session
from repro.api.outcome import Undecided
from repro.codec import SCHEMA_VERSION, from_wire, to_wire
from repro.conformance import Disagreement, run_fuzz
from repro.gen import GenConfig
from repro.gen.triples import regenerate as regenerate_trial

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens")

GNI = (
    "forall <a>, <b>. a(l) == b(l)",
    "y := nonDet(); l := h xor y",
    "forall <a>, <b>. exists <c>. c(h) == a(h) && c(l) == b(l)",
)

FUZZ_CONFIG = GenConfig(lo=0, hi=1, max_command_depth=2, max_assertion_depth=2)


def _zero_elapsed(node):
    """``elapsed`` is measurement, not wire format — zero it everywhere."""
    if isinstance(node, dict):
        return {
            key: (0.0 if key == "elapsed" else _zero_elapsed(value))
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [_zero_elapsed(item) for item in node]
    return node


def _session():
    return Session(["h", "l", "y"], lo=0, hi=1)


def build_task():
    return to_wire(_session().task(*GNI, label="gni"))


def build_proved():
    return to_wire(_session().verify(*GNI).outcome)


def build_refuted():
    return to_wire(
        _session().verify("true", "l := h", "forall <a>, <b>. a(l) == b(l)").outcome
    )


def build_undecided():
    return to_wire(
        Undecided("exhaustive", "oracle", reason="budget exhausted after 3 of 256 initial sets")
    )


def build_report():
    session = _session()
    report = session.verify_many(
        [
            GNI,
            ("true", "l := h", "forall <a>, <b>. a(l) == b(l)"),
        ]
    )
    return to_wire(report)


def build_disagreement():
    trial = regenerate_trial(0, 1, FUZZ_CONFIG)
    return to_wire(
        Disagreement(
            "engine-vs-naive",
            "engine says valid, naive oracle says invalid",
            trial_seed=0,
            trial_index=1,
            reproducer=trial.triple,
        )
    )


def build_fuzz_report():
    return to_wire(run_fuzz(0, 3, config=FUZZ_CONFIG, embeddings=False))


BUILDERS = {
    "task": build_task,
    "outcome-proved": build_proved,
    "outcome-refuted": build_refuted,
    "outcome-undecided": build_undecided,
    "report": build_report,
    "disagreement": build_disagreement,
    "fuzz-report": build_fuzz_report,
}


def golden_path(name):
    return os.path.join(GOLDEN_DIR, "%s.json" % name)


def render(document):
    return json.dumps(_zero_elapsed(document), indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", sorted(BUILDERS))
class TestGoldens:
    def test_document_matches_golden(self, name):
        path = golden_path(name)
        assert os.path.exists(path), (
            "missing golden %s — generate it with "
            "`PYTHONPATH=src python tests/codec/test_golden.py --regen`" % path
        )
        stored = json.loads(open(path).read())
        stored_version = stored.get("schema_version")
        if stored_version != SCHEMA_VERSION:
            pytest.fail(
                "golden %r was recorded under schema_version %r but the "
                "library speaks %d; regenerate the goldens "
                "(PYTHONPATH=src python tests/codec/test_golden.py --regen)"
                % (name, stored_version, SCHEMA_VERSION)
            )
        fresh = render(BUILDERS[name]())
        if fresh != render(stored):
            pytest.fail(
                "wire document %r changed while schema_version stayed at %d "
                "— the format drifted without a version bump.  Bump "
                "repro.codec.SCHEMA_VERSION and regenerate the goldens "
                "(PYTHONPATH=src python tests/codec/test_golden.py --regen)"
                % (name, SCHEMA_VERSION)
            )

    def test_golden_still_decodes(self, name):
        stored = json.loads(open(golden_path(name)).read())
        decoded = from_wire(stored)
        fresh = from_wire(json.loads(render(BUILDERS[name]())))
        assert decoded == fresh


def regen():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, builder in sorted(BUILDERS.items()):
        path = golden_path(name)
        with open(path, "w") as handle:
            handle.write(render(builder()))
        print("wrote %s" % path)


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
        sys.exit(2)
