"""Finite universes of extended states.

A :class:`Universe` declares the program variables, logical variables and
the shared finite value domain, and enumerates every extended state over
them.  The oracle checker quantifies hyper-triples over subsets of this
enumeration, turning Def. 5 into a finite (if exponential) check.

The number of extended states is ``|domain| ** |pvars| * |lvar_domain| **
|lvars|``; validity checking enumerates its powerset, deciding each
subset by unioning precomputed per-state images (see
:mod:`repro.checker.engine`) — ``O(n · exec + 2**n · union)`` for ``n``
extended states, so the powerset, not the executions, is the budget to
watch.  Keep the declaration tiny (two variables over three values is
already 512 subsets).

Each universe also *interns* its extended states to dense integer ids
(``ext_states()[i]`` has id ``i``), letting the engine and the symbolic
encoder represent sets of states as int bitmasks (see
:mod:`repro.checker.bitset`) and key per-state tables by id instead of
rehashing :class:`~repro.semantics.state.ExtState` objects.  The table
is growable: program arithmetic can step outside the declared grid, so
image states beyond ``ext_states()`` are appended fresh ids on first
sight (thread-safely — sessions share universes across worker threads).
"""

import threading
from itertools import product

from ..semantics.state import ExtState, State


class Universe:
    """All extended states over declared variables and a finite domain.

    Parameters
    ----------
    pvars:
        Names of program variables.
    domain:
        The shared finite value :class:`~repro.values.Domain`.
    lvars:
        Names of logical variables (default: none).
    lvar_domain:
        Optional separate domain for logical variables (default: ``domain``).
    """

    def __init__(self, pvars, domain, lvars=(), lvar_domain=None):
        self.pvars = tuple(sorted(pvars))
        self.lvars = tuple(sorted(lvars))
        self.domain = domain
        self.lvar_domain = lvar_domain if lvar_domain is not None else domain
        self._states = None
        self._ids = None  # state -> dense id (ext_states order, growable)
        self._by_id = None  # id -> state (list, parallel to _ids)
        self._intern_lock = threading.Lock()

    def program_states(self):
        """All program states (tuple ordered deterministically)."""
        out = []
        for combo in product(self.domain.values, repeat=len(self.pvars)):
            out.append(State(dict(zip(self.pvars, combo))))
        return tuple(out)

    def logical_states(self):
        """All logical states."""
        out = []
        for combo in product(self.lvar_domain.values, repeat=len(self.lvars)):
            out.append(State(dict(zip(self.lvars, combo))))
        return tuple(out)

    def ext_states(self):
        """All extended states (cached)."""
        if self._states is None:
            progs = self.program_states()
            logs = self.logical_states()
            self._states = tuple(ExtState(l, p) for l in logs for p in progs)
        return self._states

    # -- interning ---------------------------------------------------------
    def _intern(self):
        with self._intern_lock:
            if self._ids is None:
                states = self.ext_states()
                self._by_id = list(states)
                self._ids = {phi: i for i, phi in enumerate(states)}
        return self._ids

    def index_of(self, phi):
        """The dense id of ``phi`` — O(1); states outside the declared
        grid (image states of grid-escaping programs) are appended fresh
        ids on first sight."""
        ids = self._ids
        if ids is None:
            ids = self._intern()
        i = ids.get(phi)
        if i is not None:
            return i
        with self._intern_lock:
            i = ids.get(phi)
            if i is None:
                i = len(self._by_id)
                self._by_id.append(phi)
                ids[phi] = i
        return i

    def state_of(self, i):
        """The extended state with dense id ``i`` — O(1)."""
        if self._ids is None:
            self._intern()
        return self._by_id[i]

    def interned(self):
        """The number of ids assigned so far (``>= size()`` once images
        escaping the grid have been interned)."""
        if self._ids is None:
            self._intern()
        return len(self._by_id)

    def mask_of(self, states):
        """Encode an iterable of extended states as an id bitmask."""
        index_of = self.index_of
        mask = 0
        for phi in states:
            mask |= 1 << index_of(phi)
        return mask

    def states_of(self, mask):
        """Decode an id bitmask back to a ``frozenset`` of states."""
        if self._ids is None:
            self._intern()
        by_id = self._by_id
        out = []
        while mask:
            low = mask & -mask
            out.append(by_id[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    def size(self):
        """Number of extended states, computed arithmetically.

        ``|domain| ** |pvars| * |lvar_domain| ** |lvars|`` — this never
        materializes the enumeration, so sizing (or repr-ing, e.g. in a
        debugger) a huge universe stays O(1).
        """
        return len(self.domain) ** len(self.pvars) * len(self.lvar_domain) ** len(
            self.lvars
        )

    def restrict(self, predicate):
        """The extended states satisfying a Python predicate ``φ -> bool``."""
        return tuple(phi for phi in self.ext_states() if predicate(phi))

    def __repr__(self):
        return "Universe(pvars=%r, lvars=%r, %r: %d states)" % (
            self.pvars,
            self.lvars,
            self.domain,
            self.size(),
        )


def small_universe(pvars, lo, hi, lvars=(), llo=None, lhi=None):
    """Convenience: a Universe over integer ranges.

    ``small_universe(["x"], 0, 2)`` declares one program variable over
    ``{0, 1, 2}``.
    """
    from ..values import IntRange

    domain = IntRange(lo, hi)
    ldom = None
    if llo is not None:
        ldom = IntRange(llo, lhi if lhi is not None else llo)
    return Universe(pvars, domain, lvars=lvars, lvar_domain=ldom)
