"""Big-step operational semantics (Fig. 9, App. A).

``post_states(C, σ, domain)`` computes the *complete* set
``{σ' | ⟨C, σ⟩ → σ'}`` of final states reachable from ``σ``:

- ``x := nonDet()`` ranges over the given finite ``domain``;
- ``assume b`` yields ``{σ}`` when ``b(σ)`` holds and ``{}`` otherwise
  (the semantics "gets stuck");
- ``C*`` is the reflexive-transitive closure of the body relation,
  computed by breadth-first fixpoint.

Values produced by assignments are *not* clamped to the domain — the
domain only bounds non-deterministic choice.  The fixpoint for ``C*``
therefore terminates exactly when the set of states reachable through the
loop body is finite, which holds for every program in the paper (their
loops are guarded).  A ``max_states`` cap turns genuine divergence of the
reachable set into a loud error instead of a hang.

Two executors share these semantics:

- :func:`post_states` routes through the compile-once layer
  (:func:`repro.compile.compile_command`): the command is fused into one
  step function the first time it runs, and every subsequent state pays
  direct closure calls instead of per-node ``eval`` dispatch;
- :func:`post_states_interpreted` is the direct tree-walk, retained as
  the reference the compiled executor (and the whole checker engine) is
  cross-validated against — the ``naive_*`` oracles in
  :mod:`repro.checker.validity` use it exclusively.
"""

from ..compile.command import compile_command
from ..errors import EvaluationError
from ..lang.ast import Assign, Assume, Choice, Havoc, Iter, Seq, Skip


def post_states(command, sigma, domain, max_states=100000):
    """All final program states of ``command`` started in ``sigma``.

    Returns a ``frozenset`` of :class:`~repro.semantics.state.State`.
    An empty result means no execution terminates (e.g. a failed assume).
    Runs on the compiled step function (cached per ``(command, domain)``
    in the module-wide compile cache); semantics — including the
    ``max_states`` divergence error — are identical to
    :func:`post_states_interpreted`.
    """
    return compile_command(command, domain)(sigma, max_states)


def post_states_interpreted(command, sigma, domain, max_states=100000):
    """The interpreted (tree-walking) executor — the cross-validation
    baseline for the compiled step functions.  Never used on a hot path."""
    return _post(command, sigma, domain, max_states)


def _post(command, sigma, domain, max_states):
    if isinstance(command, Skip):
        return frozenset((sigma,))
    if isinstance(command, Assign):
        return frozenset((sigma.set(command.var, command.expr.eval(sigma)),))
    if isinstance(command, Havoc):
        return frozenset(sigma.set(command.var, v) for v in domain)
    if isinstance(command, Assume):
        return frozenset((sigma,)) if command.cond.eval(sigma) else frozenset()
    if isinstance(command, Seq):
        out = set()
        for mid in _post(command.first, sigma, domain, max_states):
            out |= _post(command.second, mid, domain, max_states)
            _check_cap(out, max_states)
        return frozenset(out)
    if isinstance(command, Choice):
        return _post(command.left, sigma, domain, max_states) | _post(
            command.right, sigma, domain, max_states
        )
    if isinstance(command, Iter):
        # Least fixpoint: states reachable by any finite number of body runs.
        seen = {sigma}
        frontier = [sigma]
        while frontier:
            nxt = []
            for s in frontier:
                for s2 in _post(command.body, s, domain, max_states):
                    if s2 not in seen:
                        seen.add(s2)
                        nxt.append(s2)
            _check_cap(seen, max_states)
            frontier = nxt
        return frozenset(seen)
    raise TypeError("not a command: %r" % (command,))


def _check_cap(collection, max_states):
    if len(collection) > max_states:
        raise EvaluationError(
            "reachable state space exceeded %d states; "
            "the iterated body likely diverges" % max_states
        )


def run_deterministic(command, sigma, domain):
    """Run a command expected to have exactly one final state.

    Raises :class:`EvaluationError` if the command is non-deterministic
    from ``sigma`` (zero or several final states).  Useful in tests and
    examples for straight-line deterministic code.
    """
    outs = post_states(command, sigma, domain)
    if len(outs) != 1:
        raise EvaluationError(
            "expected a single final state, got %d" % len(outs)
        )
    return next(iter(outs))
