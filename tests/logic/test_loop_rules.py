"""The Fig. 5 loop rules, each on a worked example checked by the oracle."""

import pytest

from repro.assertions import (
    EqualsSet,
    EntailmentOracle,
    HLit,
    HBin,
    box,
    emp_s,
    forall_s,
    low,
    lv,
    pv,
    simplies,
    SAnd,
)
from repro.checker import Universe, check_triple
from repro.errors import ProofError
from repro.lang import parse_bexpr, parse_command, while_loop, if_then
from repro.lang.expr import V
from repro.logic import (
    backward_proof,
    rule_assign_s,
    rule_assume_s,
    rule_cons,
    rule_if_sync,
    rule_iter,
    rule_while_desugared,
    rule_while_exists,
    rule_while_forall_exists,
    rule_while_sync,
    semantic_axiom,
    if_sync_else_pre,
    if_sync_then_pre,
    while_desugared_exit_pre,
    while_exists_fixed_post,
    while_exists_fixed_pre,
    while_exists_variant_post,
    while_exists_variant_pre,
    while_sync_body_pre,
    while_sync_post,
)
from repro.semantics.state import ExtState, State
from repro.values import IntRange

from tests.conftest import make_oracle


def check_conclusion(proof, universe, max_size=None):
    result = check_triple(proof.pre, proof.command, proof.post, universe, max_size)
    assert result.valid, proof.rule
    return proof


class TestWhileSync:
    """Decrement loop: low(x) is a natural synchronized invariant."""

    def setup_method(self):
        self.uni = Universe(["x"], IntRange(0, 2))
        self.oracle = make_oracle(self.uni)
        self.cond = parse_bexpr("x > 0")
        self.inv = low("x")

    def _body_proof(self):
        expected_pre = while_sync_body_pre(self.inv, self.cond)
        inner = rule_assign_s(self.inv, "x", V("x") - 1)
        return rule_cons(expected_pre, self.inv, inner, self.oracle), expected_pre

    def test_while_sync_proves_low(self):
        body_proof, expected_pre = self._body_proof()
        # premise rebuilt with the helper matches structurally
        proof = rule_while_sync(self.inv, self.cond, body_proof, self.oracle)
        check_conclusion(proof, self.uni)
        # and the conclusion entails low(x) — the Sect. 5.1 motivation
        assert self.oracle.entails(proof.post, self.inv)

    def test_rejects_invariant_without_low_guard(self):
        from repro.assertions import TRUE_H, not_emp_s
        from repro.errors import EntailmentError

        body = semantic_axiom(
            while_sync_body_pre(not_emp_s, self.cond),
            parse_command("x := x - 1"),
            not_emp_s,
            self.uni,
        )
        with pytest.raises(EntailmentError):
            rule_while_sync(not_emp_s, self.cond, body, self.oracle)

    def test_rejects_mismatched_body(self):
        inner = rule_assign_s(self.inv, "x", V("x") - 1)
        with pytest.raises(ProofError):
            rule_while_sync(self.inv, self.cond, inner, self.oracle)

    def test_emp_disjunct_is_needed(self):
        """Ablation: without the emp disjunct WhileSync would be unsound —
        `while (x >= 0) { skip }` never terminates, the final set is ∅."""
        cond = parse_bexpr("x >= 0")
        inv = low("x")
        loop = while_loop(cond, parse_command("skip"))
        with_emp = (inv | emp_s) & box(cond.negate())
        without_emp = inv & box(cond.negate())
        assert check_triple(inv, loop, with_emp, self.uni).valid
        # the ∅ final set falsifies nothing universal, so this particular
        # postcondition still holds of ∅; strengthen with non-emptiness:
        from repro.assertions import not_emp_s

        assert not check_triple(
            inv & not_emp_s, loop, without_emp & not_emp_s, self.uni
        ).valid


class TestIfSync:
    def test_if_sync(self):
        uni = Universe(["x", "y"], IntRange(0, 1))
        oracle = make_oracle(uni)
        pre = low("x")
        cond = parse_bexpr("x > 0")
        then_cmd = parse_command("y := 1")
        else_cmd = parse_command("y := 0")
        post = low("y")
        then_proof = semantic_axiom(if_sync_then_pre(pre, cond), then_cmd, post, uni)
        else_proof = semantic_axiom(if_sync_else_pre(pre, cond), else_cmd, post, uni)
        proof = rule_if_sync(pre, cond, then_proof, else_proof, oracle)
        check_conclusion(proof, uni)

    def test_if_sync_requires_low_guard(self):
        from repro.assertions import TRUE_H, not_emp_s
        from repro.errors import EntailmentError

        uni = Universe(["x", "y"], IntRange(0, 1))
        oracle = make_oracle(uni)
        cond = parse_bexpr("x > 0")
        t = semantic_axiom(
            if_sync_then_pre(not_emp_s, cond), parse_command("y := 1"), TRUE_H, uni
        )
        e = semantic_axiom(
            if_sync_else_pre(not_emp_s, cond), parse_command("y := 0"), TRUE_H, uni
        )
        with pytest.raises(EntailmentError):
            rule_if_sync(not_emp_s, cond, t, e, oracle)


class TestWhileForallExists:
    """The While-∀*∃* rule on a small monotonicity example (the Fig. 7
    phenomenon: executions exit at different iterations)."""

    def setup_method(self):
        self.uni = Universe(
            ["x", "y"], IntRange(0, 1), lvars=["t"], lvar_domain=IntRange(1, 2)
        )
        self.cond = parse_bexpr("x > 0")
        self.body = parse_command("x := x - 1; y := 1")
        tags = SAnd(lv("φ1", "t").eq(1), lv("φ2", "t").eq(2))
        ordered = SAnd(
            pv("φ1", "x").ge(pv("φ2", "x")), pv("φ1", "y").ge(pv("φ2", "y"))
        )
        self.inv = forall_s("φ1", forall_s("φ2", simplies(tags, ordered)))
        self.post = forall_s(
            "φ1",
            forall_s("φ2", simplies(tags, pv("φ1", "y").ge(pv("φ2", "y")))),
        )

    def test_rule_application(self):
        conditional = if_then(self.cond, self.body)
        body_proof = semantic_axiom(self.inv, conditional, self.inv, self.uni)
        exit_inner = rule_assume_s(self.post, self.cond.negate())
        oracle = make_oracle(self.uni)
        exit_proof = rule_cons(self.inv, self.post, exit_inner, oracle)
        proof = rule_while_forall_exists(self.inv, self.cond, body_proof, exit_proof)
        check_conclusion(proof, self.uni)

    def test_side_condition_rejects_exists_forall_post(self):
        from repro.assertions import exists_s

        bad_post = exists_s("p", forall_s("q", pv("p", "x").le(pv("q", "x"))))
        conditional = if_then(self.cond, self.body)
        body_proof = semantic_axiom(self.inv, conditional, self.inv, self.uni)
        exit_inner = rule_assume_s(bad_post, self.cond.negate())
        oracle = make_oracle(self.uni)
        try:
            exit_proof = rule_cons(self.inv, bad_post, exit_inner, oracle)
        except Exception:
            pytest.skip("entailment refuses earlier — side condition unreached")
        with pytest.raises(ProofError):
            rule_while_forall_exists(self.inv, self.cond, body_proof, exit_proof)

    def test_wrong_body_shape_rejected(self):
        body_proof = semantic_axiom(self.inv, parse_command("skip"), self.inv, self.uni)
        exit_inner = rule_assume_s(self.post, self.cond.negate())
        oracle = make_oracle(self.uni)
        exit_proof = rule_cons(self.inv, self.post, exit_inner, oracle)
        with pytest.raises(ProofError):
            rule_while_forall_exists(self.inv, self.cond, body_proof, exit_proof)


class TestWhileExists:
    """While-∃ on a growing loop with a minimal execution (the Fig. 8
    phenomenon, shrunk to a 9-state universe)."""

    def setup_method(self):
        self.uni = Universe(["r", "x"], IntRange(0, 2))
        self.cond = parse_bexpr("x < 2")
        self.body = parse_command("r := nonDet(); assume r >= 1; x := min(x + r, 2)")
        self.state = "φ"
        # P_φ: φ is a running minimum: ∀⟨α⟩. 0 ≤ φ(x) ≤ α(x)
        self.p_body = forall_s(
            "α", SAnd(HLit(0).le(pv("φ", "x")), pv("φ", "x").le(pv("α", "x")))
        )
        self.q_body = forall_s("α", pv("φ", "x").le(pv("α", "x")))
        # variant: e(φ) = 2 - φ(x)
        self.variant = HBin("-", HLit(2), pv("φ", "x"))

    def test_rule_application(self):
        conditional = if_then(self.cond, self.body)
        loop = while_loop(self.cond, self.body)
        variant_proofs = {}
        for v in self.uni.domain:
            variant_proofs[v] = semantic_axiom(
                while_exists_variant_pre(self.p_body, self.state, self.cond, self.variant, v),
                conditional,
                while_exists_variant_post(self.p_body, self.state, self.variant, v),
                self.uni,
            )
        fixed_proofs = {}
        for phi in self.uni.ext_states():
            fixed_proofs[phi] = semantic_axiom(
                while_exists_fixed_pre(self.p_body, self.state, phi),
                loop,
                while_exists_fixed_post(self.q_body, self.state, phi),
                self.uni,
            )
        proof = rule_while_exists(
            self.p_body,
            self.q_body,
            self.state,
            self.cond,
            self.variant,
            variant_proofs,
            fixed_proofs,
            self.uni,
        )
        check_conclusion(proof, self.uni)
        # conclusion shape: {∃⟨φ⟩. P_φ} while {∃⟨φ⟩. Q_φ} — an ∃∀ triple
        from repro.assertions import exists_s

        assert proof.post == exists_s(self.state, self.q_body)

    def test_missing_premises_rejected(self):
        with pytest.raises(ProofError):
            rule_while_exists(
                self.p_body,
                self.q_body,
                self.state,
                self.cond,
                self.variant,
                {},
                {},
                self.uni,
            )


class TestWhileDesugared:
    """The general rule, with pinned-set families (completeness style)."""

    def test_decrement_loop(self):
        uni = Universe(["x"], IntRange(0, 2))
        oracle = make_oracle(uni)
        cond = parse_bexpr("x > 0")
        body = parse_command("x := x - 1")
        step = parse_command("assume x > 0; x := x - 1")

        def pin(*xs):
            return EqualsSet(
                frozenset(ExtState(State({}), State({"x": x})) for x in xs)
            )

        layers = [pin(1, 2), pin(0, 1), pin(0), pin()]
        family = lambda n: layers[min(n, 3)]  # noqa: E731
        body_proofs = [
            semantic_axiom(family(n), step, family(n + 1), uni) for n in range(4)
        ]
        exit_pre = while_desugared_exit_pre(family, 3)
        exit_post = box(V("x").eq(0))
        exit_proof = rule_cons(
            exit_pre,
            exit_post,
            rule_assume_s(exit_post, cond.negate()),
            oracle,
            "exit",
        )
        proof = rule_while_desugared(family, body_proofs, 3, exit_proof, cond)
        check_conclusion(proof, uni)
        assert proof.command == while_loop(cond, body)
