"""Static analyses: written/read variables, loop-freedom, sizes."""

from hypothesis import given

from repro.lang import (
    Assign,
    Assume,
    Choice,
    Havoc,
    Iter,
    Seq,
    Skip,
    V,
    parse_command,
    command_size,
    is_loop_free,
    read_vars,
    subcommands,
    written_vars,
)
from repro.lang.analysis import always_terminates_everywhere, has_assume

from tests.strategies import commands


class TestWrittenVars:
    def test_atomic(self):
        assert written_vars(Skip()) == frozenset()
        assert written_vars(Assign("x", 1)) == {"x"}
        assert written_vars(Havoc("y")) == {"y"}
        assert written_vars(Assume(V("x").gt(0))) == frozenset()

    def test_composite(self):
        c = parse_command("x := 1; { y := 2 } + { z := 3 }")
        assert written_vars(c) == {"x", "y", "z"}

    def test_loop(self):
        c = parse_command("while (x > 0) { y := y + 1; x := x - 1 }")
        assert written_vars(c) == {"x", "y"}

    @given(commands(max_depth=3))
    def test_written_subset_of_mentioned(self, command):
        # wr(C) only contains assignment/havoc targets
        targets = set()
        for sub in subcommands(command):
            if isinstance(sub, (Assign, Havoc)):
                targets.add(sub.var)
        assert written_vars(command) == targets


class TestReadVars:
    def test_atomic(self):
        assert read_vars(Assign("x", V("y") + 1)) == {"y"}
        assert read_vars(Assume(V("x").lt(V("z")))) == {"x", "z"}
        assert read_vars(Havoc("x")) == frozenset()

    def test_composite(self):
        c = parse_command("x := y; assume z > 0")
        assert read_vars(c) == {"y", "z"}


class TestShape:
    def test_loop_free(self):
        assert is_loop_free(parse_command("x := 1; y := 2"))
        assert not is_loop_free(parse_command("loop { skip }"))
        assert not is_loop_free(parse_command("while (x > 0) { skip }"))

    def test_has_assume(self):
        assert has_assume(parse_command("assume x > 0"))
        assert has_assume(parse_command("if (x > 0) { skip }"))
        assert not has_assume(parse_command("x := 1; y := nonDet()"))

    def test_always_terminates(self):
        assert always_terminates_everywhere(parse_command("x := 1; y := nonDet()"))
        assert not always_terminates_everywhere(parse_command("assume x > 0"))
        assert not always_terminates_everywhere(parse_command("loop { skip }"))

    def test_command_size(self):
        assert command_size(Skip()) == 1
        assert command_size(Seq(Skip(), Skip())) == 3
        assert command_size(Iter(Choice(Skip(), Skip()))) == 4

    @given(commands(max_depth=3))
    def test_subcommands_count_matches_size(self, command):
        assert len(subcommands(command)) == command_size(command)
