"""E10 — Fig. 4: the backward proof outline that C4 violates GNI.

The mechanized replay: start from the ∃∃∀ postcondition, apply AssignS,
AssumeS, HavocS backward, close with Cons — the entailment discharged by
the SAT backend over the 27-state universe (our Z3 stand-in).

Expected: derivation {Cons, Seq×2, HavocS, AssumeS, AssignS}; the
unstrengthened precondition low(l) does NOT entail the wp (the paper's
point about strengthening the pre to disprove).

Modes::

    python benchmarks/bench_fig4_gni_violation.py          # full: 27 states
    python benchmarks/bench_fig4_gni_violation.py --quick  # CI: 8 states

Full mode times the whole outline replay over ``IntRange(0, 2)`` (the
paper's universe) and prints the speedup against the pre-bitset/pre-JW
baseline wall time (``BASELINE_S``, measured on the same workload before
states were interned and the SAT solver branched statically) — run_all
captures that figure as this bench's ratio.  Quick mode shrinks the
domain to ``IntRange(0, 1)`` so the same derivation replays in well
under a second; both modes assert the derivation shape and the
strengthening asymmetry, so the CI smoke still checks the logic, not
just that the code runs.
"""

import argparse
import time

from repro.assertions import EntailmentOracle, differing_highs, gni_violation, low
from repro.checker import Universe
from repro.lang import parse_command
from repro.logic import verify_straightline, wp_syntactic
from repro.values import IntRange

#: Wall time of the full-size replay before the bitset core and the
#: static Jeroslow-Wang branch order landed (same machine class as CI).
BASELINE_S = 179.0

#: Full mode must beat the recorded baseline by at least this factor.
MIN_SPEEDUP = 3.0


def setup(quick=False):
    domain = IntRange(0, 1) if quick else IntRange(0, 2)
    uni = Universe(["h", "l", "y"], domain)
    c4 = parse_command("y := nonDet(); assume y <= 1; l := h + y")
    pre = low("l") & differing_highs("h")
    post = gni_violation("h", "l")
    oracle = EntailmentOracle(uni.ext_states(), uni.domain, method="sat")
    return uni, c4, pre, post, oracle


def check_outline(proof):
    rules = proof.rules_used()
    assert rules.get("HavocS") == 1, rules
    assert rules.get("AssumeS") == 1, rules
    assert rules.get("AssignS") == 1, rules
    assert not proof.all_assumptions()
    return rules


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="8-state universe (CI smoke) instead of the "
                        "paper's 27-state one")
    args = parser.parse_args(argv)

    uni, c4, pre, post, oracle = setup(quick=args.quick)
    n = len(uni.ext_states())

    started = time.perf_counter()
    proof = verify_straightline(pre, c4, post, oracle)
    verify_s = time.perf_counter() - started
    rules = check_outline(proof)
    print("Fig. 4 derivation over %d states (%d rule applications): %s"
          % (n, proof.size(), dict(sorted(rules.items()))))

    started = time.perf_counter()
    wp = wp_syntactic(c4, post)
    strengthened_ok = oracle.entails(pre, wp)
    weak_ok = oracle.entails(low("l"), wp)
    strengthen_s = time.perf_counter() - started
    assert strengthened_ok and not weak_ok
    print("low(l) ∧ ∃ differing highs |= wp: %s; low(l) alone: %s"
          % (strengthened_ok, weak_ok))

    print("  outline replay:       %8.3fs" % verify_s)
    print("  strengthening checks: %8.3fs" % strengthen_s)

    if not args.quick:
        speedup = BASELINE_S / verify_s if verify_s else float("inf")
        print("  vs %.0fs pre-bitset baseline:  %6.1fx" % (BASELINE_S, speedup))
        assert speedup >= MIN_SPEEDUP, (
            "full-size fig4 replay regressed: %.1fs is less than %.1fx over "
            "the %.0fs baseline" % (verify_s, MIN_SPEEDUP, BASELINE_S)
        )
        print("fig4 speedup >= %.0fx: OK" % MIN_SPEEDUP)
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
