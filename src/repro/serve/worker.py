"""Worker-side execution for the verification service.

The daemon's verification work runs here — either on a
``ProcessPoolExecutor`` (the default: CPU-bound oracle enumeration
sidesteps the GIL exactly like ``verify_many(sharding="process")``) or
inline on a thread pool.  Either way the unit of work is one codec task
document plus the :class:`~repro.api.sharding.SessionSpec` that rebuilds
its session: the same picklable recipe process sharding ships, reused
verbatim.

Each worker process keeps a small LRU registry of live sessions keyed by
spec, so consecutive tasks over the same universe share image, mask,
compile and entailment caches — the daemon's *warm-process* tier,
sitting between a cold session build and the cross-restart result store.
The registry is bounded (:data:`MAX_SESSIONS`) because every session
pins a universe and its caches; ``max_image_entries`` in the spec bounds
each session's image/mask tiers in turn (the long-lived-daemon leak
fixes in :class:`~repro.checker.engine.ImageCache` are what make that
bound honest).
"""

import threading
from collections import OrderedDict

from ..api.sharding import SessionSpec
from ..api.task import VerificationTask, infer_variables
from ..codec import from_wire, to_wire

#: Live sessions kept per worker process.
MAX_SESSIONS = 8

_SESSIONS = OrderedDict()
_SESSIONS_LOCK = threading.Lock()


def spec_for_task(task, lo=0, hi=1, entailment="sat", max_set_size=None,
                  max_image_entries=None, intra_task_workers=None):
    """The :class:`SessionSpec` a task document runs under.

    The universe's variables are inferred from the triple exactly like
    the one-shot CLI does (program reads/writes plus assertion
    lookups); the domain bounds and oracle configuration come from the
    server.
    """
    assertions = [task.pre, task.post]
    if task.invariant is not None:
        assertions.append(task.invariant)
    pvars, lvars = infer_variables(task.command, assertions)
    return SessionSpec(
        pvars=tuple(pvars),
        lo=lo,
        hi=hi,
        lvars=tuple(lvars),
        entailment=entailment,
        max_set_size=max_set_size,
        max_image_entries=max_image_entries,
        intra_task_workers=intra_task_workers,
    )


def session_for(spec):
    """The (per-process) live session for ``spec``, building on demand."""
    with _SESSIONS_LOCK:
        session = _SESSIONS.get(spec)
        if session is not None:
            _SESSIONS.move_to_end(spec)
            return session
    built = spec.build()
    with _SESSIONS_LOCK:
        session = _SESSIONS.get(spec)
        if session is None:
            session = built
            _SESSIONS[spec] = session
            while len(_SESSIONS) > MAX_SESSIONS:
                _SESSIONS.popitem(last=False)
        return session


def session_registry_size():
    with _SESSIONS_LOCK:
        return len(_SESSIONS)


def clear_sessions():
    with _SESSIONS_LOCK:
        _SESSIONS.clear()


def run_task_document(spec, document, budgets=None):
    """Decode, verify and re-encode one task document → result document.

    This is the function the server submits to its executor; everything
    that crosses the pool boundary (spec, document, budgets, result) is
    picklable by construction.
    """
    task = from_wire(document)
    if not isinstance(task, VerificationTask):
        raise TypeError(
            "expected a task document, decoded %r" % type(task).__name__
        )
    session = session_for(spec)
    result = session._run_task(task, None, budgets or {})
    return to_wire(result)
