"""The long-lived asyncio verification server.

One :class:`VerificationServer` owns:

- an asyncio TCP server speaking the newline-delimited envelope protocol
  (:mod:`repro.serve.protocol`);
- a worker pool — processes by default (CPU-bound enumeration sidesteps
  the GIL, exactly like ``verify_many(sharding="process")``), threads on
  request (``executor="thread"``, the cheap option for tests and tiny
  deployments);
- a content-addressed :class:`~repro.serve.store.ResultStore`: a task
  document seen before is answered from disk in O(1) without touching a
  worker, a backend or an oracle.

Request lifecycle: parse envelope → decode the embedded codec document
(malformed documents are rejected *here*, before any pool dispatch, with
a typed error document) → store lookup → on miss, dispatch
:func:`~repro.serve.worker.run_task_document` to the pool under the
per-request timeout → store the result → respond.  The store key folds
in the server's semantic context (domain bounds, entailment method,
oracle caps) and the request budgets, so a budget-limited ``Undecided``
can never masquerade as the answer to an unlimited query.  Store misses
are *single-flight*: concurrent requests for the same key share one
worker job and one store write instead of racing duplicates.

Shutdown is graceful: the listener closes first, open connections get to
finish their in-flight request, the worker pool drains, and only then
does :meth:`VerificationServer.wait_stopped` return.  A tripped
per-request *timeout* answers that client immediately, but cannot
preempt the worker — the job runs to completion (bounded by any budgets
it carries) and its result is stored, so the retry is a store hit.
"""

import asyncio
import json
import signal
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Optional

from ..api.sharding import default_shards
from ..api.task import VerificationTask, clock
from ..codec import WireError, from_wire
from .protocol import (
    ProtocolError,
    error_document,
    error_response,
    ok_response,
    parse_budgets,
    parse_request,
    task_key,
)
from .store import ResultStore
from .worker import run_task_document, spec_for_task

#: Default TCP port (chosen to be unremarkable and unprivileged).
DEFAULT_PORT = 7341


@dataclass
class ServeConfig:
    """Everything a daemon instance is parameterized by.

    ``lo``/``hi``/``entailment``/``max_set_size`` fix the semantic
    context tasks are verified under (variables are inferred per task,
    like the one-shot CLI); they participate in the store key, so
    daemons with different contexts can safely share one store
    directory.  ``max_image_entries`` bounds each worker session's
    image+mask cache — the in-memory tier — while ``store_ttl`` /
    ``max_store_entries`` govern the on-disk result tier (defaults:
    keep results forever, unbounded).

    ``intra_task_workers`` turns on the partitioned mask-space scan
    (:mod:`repro.checker.parallel`) inside each worker session, so one
    store-missing request with a huge enumeration no longer pins the
    wall clock to a single core.  It composes with ``workers`` (the
    cross-request pool) and deliberately does *not* participate in the
    store key: parallel and serial scans produce byte-identical
    results.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    store_path: str = ".repro_store"
    workers: Optional[int] = None
    executor: str = "process"
    timeout: Optional[float] = 60.0
    lo: int = 0
    hi: int = 1
    entailment: str = "sat"
    max_set_size: Optional[int] = None
    max_image_entries: Optional[int] = 4096
    intra_task_workers: Optional[int] = None
    store_ttl: Optional[float] = None
    max_store_entries: Optional[int] = None
    quiet: bool = field(default=False)

    def __post_init__(self):
        if self.executor not in ("process", "thread"):
            raise ValueError(
                "executor must be 'process' or 'thread', got %r"
                % (self.executor,)
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                "timeout must be > 0 seconds or None, got %r" % (self.timeout,)
            )


class VerificationServer:
    """The asyncio server behind ``python -m repro serve``."""

    def __init__(self, config=None, store=None):
        self.config = config or ServeConfig()
        self.store = store or ResultStore(
            self.config.store_path,
            ttl=self.config.store_ttl,
            max_entries=self.config.max_store_entries,
        )
        self.address = None
        self.started_at = None
        self.requests = 0
        self.store_hits = 0
        self.verified = 0
        self.errors = {}
        self._server = None
        self._executor = None
        self._inflight = {}
        self.coalesced = 0
        self._connections = set()
        self._draining = False
        self._stopped = None
        self._shutdown_started = False

    # -- lifecycle -------------------------------------------------------
    def _make_executor(self):
        workers = self.config.workers
        if workers is None:
            workers = default_shards()
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        if self.config.executor == "thread":
            return ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
        return ProcessPoolExecutor(max_workers=workers)

    async def start(self):
        """Bind the listener and spin up the worker pool."""
        self._stopped = asyncio.Event()
        self._executor = self._make_executor()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self.started_at = clock()
        return self.address

    async def wait_stopped(self):
        """Block until a graceful shutdown completes."""
        await self._stopped.wait()

    async def shutdown(self):
        """Stop accepting, drain connections and workers, then stop."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # let open connections finish the request they are writing
        for _ in range(200):
            if not self._connections:
                break
            await asyncio.sleep(0.025)
        for writer in list(self._connections):
            writer.close()
        if self._executor is not None:
            # drain in-flight worker jobs, drop queued ones
            await asyncio.get_event_loop().run_in_executor(
                None, partial(self._executor.shutdown, True, cancel_futures=True)
            )
        self._stopped.set()

    # -- per-connection loop ---------------------------------------------
    async def _handle(self, reader, writer):
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = await self._respond(line)
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond(self, line):
        request_id = None
        op = "?"
        try:
            envelope = parse_request(line)
            request_id = envelope.get("id")
            op = envelope.get("op", "verify")
            self.requests += 1
            if self._draining:
                raise ProtocolError(
                    "shutting-down", "server is draining; try another instance"
                )
            if op == "ping":
                return ok_response(request_id, "ping")
            if op == "stats":
                return ok_response(request_id, "stats", stats=self.stats())
            if op == "shutdown":
                asyncio.get_event_loop().create_task(self.shutdown())
                return ok_response(request_id, "shutdown")
            if op == "verify":
                return await self._verify(request_id, envelope)
            raise ProtocolError("unsupported-op", "unknown op %r" % (op,))
        except ProtocolError as err:
            self.errors[err.code] = self.errors.get(err.code, 0) + 1
            return error_response(request_id, op, err)
        except Exception as err:  # never kill the connection loop
            self.errors["internal"] = self.errors.get("internal", 0) + 1
            return error_response(
                request_id,
                op,
                error_document(
                    "internal", "%s: %s" % (type(err).__name__, err)
                ),
            )

    # -- the verify op ----------------------------------------------------
    def _context(self, budgets):
        """The semantic context folded into every store key.

        The codec schema version is NOT listed here — ``task_key``
        itself folds it in, so every caller (server, client-side
        hashing, the conformance checks) gets version-partitioned keys
        without having to remember to add it."""
        config = self.config
        return {
            "lo": config.lo,
            "hi": config.hi,
            "entailment": config.entailment,
            "max_set_size": config.max_set_size,
            "budgets": budgets,
        }

    def _request_timeout(self, envelope):
        timeout = self.config.timeout
        requested = envelope.get("timeout")
        if requested is None:
            return timeout
        if isinstance(requested, bool) or not isinstance(
            requested, (int, float)
        ) or requested <= 0:
            raise ProtocolError(
                "malformed-envelope",
                "timeout must be a positive number of seconds, got %r"
                % (requested,),
            )
        requested = float(requested)
        return requested if timeout is None else min(timeout, requested)

    async def _verify(self, request_id, envelope):
        document = envelope.get("task")
        if not isinstance(document, dict):
            raise ProtocolError(
                "malformed-envelope",
                "verify requests need a 'task' wire document (a JSON object)",
            )
        budgets = parse_budgets(envelope)
        timeout = self._request_timeout(envelope)
        # reject malformed documents before touching the store or a worker
        try:
            task = from_wire(document)
        except WireError as err:
            raise ProtocolError("malformed-document", str(err))
        if not isinstance(task, VerificationTask):
            raise ProtocolError(
                "malformed-document",
                "expected a task document, decoded a %s"
                % type(task).__name__,
            )
        key = task_key(document, self._context(budgets))
        record = self.store.get(key)
        if record is not None:
            self.store_hits += 1
            return ok_response(
                request_id,
                "verify",
                cached=True,
                key=key,
                elapsed=0.0,
                result=record["result"],
            )
        started = clock()
        # single-flight: concurrent requests for the same key share one
        # worker job (and one store write) instead of racing duplicates
        pending = self._inflight.get(key)
        if pending is None:
            pending = asyncio.ensure_future(
                self._run_and_store(key, task, document, budgets)
            )
            self._inflight[key] = pending
            pending.add_done_callback(
                lambda _: self._inflight.pop(key, None)
            )
        else:
            self.coalesced += 1
        try:
            # shield: one waiter timing out must not cancel the shared job
            result_document = await asyncio.wait_for(
                asyncio.shield(pending), timeout
            )
        except asyncio.TimeoutError:
            raise ProtocolError(
                "timeout",
                "verification exceeded the %.3gs request timeout (the "
                "worker job runs to completion — bounded by the request "
                "budgets — and its result is stored for next time)" % timeout,
            )
        elapsed = clock() - started
        return ok_response(
            request_id,
            "verify",
            cached=False,
            key=key,
            elapsed=elapsed,
            result=result_document,
        )

    async def _run_and_store(self, key, task, document, budgets):
        """The shared per-key job: pool dispatch + the store write."""
        config = self.config
        spec = spec_for_task(
            task,
            lo=config.lo,
            hi=config.hi,
            entailment=config.entailment,
            max_set_size=config.max_set_size,
            max_image_entries=config.max_image_entries,
            intra_task_workers=config.intra_task_workers,
        )
        result_document = await asyncio.get_event_loop().run_in_executor(
            self._executor,
            partial(run_task_document, spec, document, budgets),
        )
        self.verified += 1
        self.store.put(key, result_document, task_document=document)
        return result_document

    def stats(self):
        return {
            "uptime": 0.0 if self.started_at is None else clock() - self.started_at,
            "requests": self.requests,
            "store_hits": self.store_hits,
            "verified": self.verified,
            "coalesced": self.coalesced,
            "errors": dict(self.errors),
            "store": self.store.stats(),
            "workers": self.config.workers or default_shards(),
            "executor": self.config.executor,
        }


async def _serve(config, on_ready=None):
    server = VerificationServer(config)
    await server.start()
    host, port = server.address
    if not config.quiet:
        print(
            "repro serve: listening on %s:%d (store: %s, %d %s workers, "
            "timeout %s)"
            % (
                host,
                port,
                server.store.root,
                config.workers or default_shards(),
                config.executor,
                "none" if config.timeout is None else "%.3gs" % config.timeout,
            ),
            flush=True,
        )
    if on_ready is not None:
        on_ready(server)
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.shutdown())
            )
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await server.wait_stopped()
    if not config.quiet:
        print("repro serve: stopped cleanly", flush=True)


def run(config):
    """Run the daemon until SIGINT/SIGTERM or a ``shutdown`` op (blocking)."""
    asyncio.run(_serve(config))
    return 0


class BackgroundServer:
    """A daemon running on a background thread of *this* process.

    The embedding surface tests, benchmarks and notebooks use::

        with BackgroundServer(ServeConfig(port=0, executor="thread")) as bg:
            client = ServeClient(*bg.address)
            ...

    ``port=0`` binds an ephemeral port; :attr:`address` is the actual
    ``(host, port)``.  Exiting the context performs the same graceful
    shutdown as a signal would.
    """

    def __init__(self, config):
        self.config = config
        self.server = None
        self._loop = None
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    @property
    def address(self):
        return self.server.address

    def start(self, timeout=10.0):
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-bg", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("background server failed to start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        try:
            asyncio.run(self._amain())
        except BaseException as err:  # surfaced to the starting thread
            self._error = err
            self._ready.set()

    async def _amain(self):
        self._loop = asyncio.get_event_loop()
        self.server = VerificationServer(self.config)
        await self.server.start()
        self._ready.set()
        await self.server.wait_stopped()

    def stop(self, timeout=30.0):
        if self._thread is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        try:
            future.result(timeout)
        finally:
            self._thread.join(timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False
