"""Pretty-printer for syntactic hyper-assertions and hyper-expressions.

Output follows the paper's notation: ``∀⟨φ⟩``, ``∃y``, ``φ(x)`` for
program lookups and ``φ_L(x)`` for logical lookups.
"""

from .syntax import (
    HBin,
    HFun,
    HLit,
    HLog,
    HProg,
    HTupleE,
    HVar,
    SAnd,
    SBool,
    SCmp,
    SExistsState,
    SExistsVal,
    SForallState,
    SForallVal,
    SOr,
)


def pretty_hexpr(expr):
    """Concrete (paper-style) syntax for a hyper-expression."""
    if isinstance(expr, HLit):
        return repr(expr.value)
    if isinstance(expr, HVar):
        return expr.name
    if isinstance(expr, HProg):
        return "%s(%s)" % (expr.state, expr.var)
    if isinstance(expr, HLog):
        return "%s_L(%s)" % (expr.state, expr.var)
    if isinstance(expr, HBin):
        if expr.op == "[]":
            return "%s[%s]" % (pretty_hexpr(expr.left), pretty_hexpr(expr.right))
        return "(%s %s %s)" % (pretty_hexpr(expr.left), expr.op, pretty_hexpr(expr.right))
    if isinstance(expr, HFun):
        return "%s(%s)" % (expr.name, ", ".join(pretty_hexpr(a) for a in expr.args))
    if isinstance(expr, HTupleE):
        return "[%s]" % ", ".join(pretty_hexpr(i) for i in expr.items)
    raise TypeError("not a hyper-expression: %r" % (expr,))


def pretty_assertion(assertion):
    """Concrete (paper-style) syntax for a syntactic hyper-assertion."""
    if isinstance(assertion, SBool):
        return "⊤" if assertion.value else "⊥"
    if isinstance(assertion, SCmp):
        return "%s %s %s" % (
            pretty_hexpr(assertion.left),
            assertion.op,
            pretty_hexpr(assertion.right),
        )
    if isinstance(assertion, SAnd):
        return "(%s ∧ %s)" % (
            pretty_assertion(assertion.left),
            pretty_assertion(assertion.right),
        )
    if isinstance(assertion, SOr):
        return "(%s ∨ %s)" % (
            pretty_assertion(assertion.left),
            pretty_assertion(assertion.right),
        )
    if isinstance(assertion, SForallVal):
        return "∀%s. %s" % (assertion.var, pretty_assertion(assertion.body))
    if isinstance(assertion, SExistsVal):
        return "∃%s. %s" % (assertion.var, pretty_assertion(assertion.body))
    if isinstance(assertion, SForallState):
        return "∀⟨%s⟩. %s" % (assertion.state, pretty_assertion(assertion.body))
    if isinstance(assertion, SExistsState):
        return "∃⟨%s⟩. %s" % (assertion.state, pretty_assertion(assertion.body))
    raise TypeError("not a syntactic hyper-assertion: %r" % (assertion,))
