"""Shared fixtures for the verification-service tests.

Servers run on a background thread of this process with a thread-pool
executor — cheap to start, and in-process monkeypatching still reaches
the worker path.  Every server gets its own ephemeral port and its own
``tmp_path`` store directory.
"""

import pytest

from repro.serve import BackgroundServer, ServeClient, ServeConfig


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "store")


@pytest.fixture
def server(store_path):
    config = ServeConfig(
        port=0,
        executor="thread",
        workers=2,
        store_path=store_path,
        quiet=True,
        timeout=30.0,
    )
    with BackgroundServer(config) as background:
        yield background


@pytest.fixture
def client(server):
    with ServeClient(*server.address) as connected:
        yield connected
