"""Tseitin transformation to CNF.

Atoms are mapped to positive integers; literals are signed integers in
DIMACS style.  Each non-atomic subformula gets a definition variable and
the defining clauses, keeping the CNF linear in the formula size (a naive
distribution would be exponential).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import SolverError
from .formula import FAnd, FFalse, FNot, FOr, FTrue, FVar


@dataclass
class CNF:
    """A CNF instance: clauses over integer literals plus the atom map."""

    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    atom_to_var: Dict[object, int] = field(default_factory=dict)
    num_vars: int = 0

    def new_var(self, atom=None):
        """Allocate a fresh variable, optionally registered for ``atom``."""
        self.num_vars += 1
        if atom is not None:
            self.atom_to_var[atom] = self.num_vars
        return self.num_vars

    def var_for(self, atom):
        """The variable for ``atom``, allocating on first use."""
        v = self.atom_to_var.get(atom)
        if v is None:
            v = self.new_var(atom)
        return v

    def add_clause(self, literals):
        """Add one clause (iterable of non-zero ints)."""
        clause = tuple(literals)
        if 0 in clause:
            raise SolverError("literal 0 is reserved")
        self.clauses.append(clause)

    def decode(self, assignment):
        """Translate a solver assignment (var -> bool) back to atoms."""
        return {atom: assignment.get(v, False) for atom, v in self.atom_to_var.items()}


def tseitin(formula, cnf=None):
    """Encode ``formula`` into ``cnf`` and assert its root literal.

    Returns the (possibly shared) :class:`CNF`; satisfiability of the CNF
    coincides with satisfiability of the conjunction of all formulas
    encoded into it so far.
    """
    if cnf is None:
        cnf = CNF()
    root = _encode(formula, cnf)
    cnf.add_clause((root,))
    return cnf


def _encode(formula, cnf):
    """Return a literal equisatisfiably representing ``formula``."""
    if isinstance(formula, FTrue):
        v = cnf.new_var()
        cnf.add_clause((v,))
        return v
    if isinstance(formula, FFalse):
        v = cnf.new_var()
        cnf.add_clause((-v,))
        return v
    if isinstance(formula, FVar):
        return cnf.var_for(formula.name)
    if isinstance(formula, FNot):
        return -_encode(formula.operand, cnf)
    if isinstance(formula, FAnd):
        lits = [_encode(p, cnf) for p in formula.parts]
        v = cnf.new_var()
        # v -> each lit ; (all lits) -> v
        for lit in lits:
            cnf.add_clause((-v, lit))
        cnf.add_clause(tuple(-lit for lit in lits) + (v,))
        return v
    if isinstance(formula, FOr):
        lits = [_encode(p, cnf) for p in formula.parts]
        v = cnf.new_var()
        # v -> some lit ; each lit -> v
        cnf.add_clause((-v,) + tuple(lits))
        for lit in lits:
            cnf.add_clause((-lit, v))
        return v
    raise SolverError("not a formula: %r" % (formula,))
