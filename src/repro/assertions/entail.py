"""Entailment between hyper-assertions (Def. 3).

``P |= Q`` iff every set of extended states satisfying ``P`` satisfies
``Q``.  Over a finite universe of extended states this is decidable by
enumerating the ``2**n`` subsets; the SAT backend of :mod:`repro.solver`
offers the same verdicts via a propositional encoding when the assertions
are syntactic.

The rules that require entailments (Cons, WhileSync's ``I |= low(b)``,
LUpdate, ...) consume an :class:`EntailmentOracle`.  Three oracle flavors:

- ``brute``  — exhaustive subset enumeration (the reference),
- ``sat``    — the propositional encoding (syntactic assertions only),
- ``assume`` — record the entailment as an unchecked assumption, for
  reasoning that is schematic in the domain (every recorded assumption is
  reported on the resulting proof object).
"""

from ..errors import EntailmentError
from ..util import iter_subsets


def entails(pre, post, universe, domain, max_size=None):
    """``pre |= post`` over all subsets of ``universe`` (up to ``max_size``)."""
    return find_entailment_counterexample(pre, post, universe, domain, max_size) is None


def find_entailment_counterexample(pre, post, universe, domain, max_size=None):
    """A set ``S`` with ``pre(S)`` and ``not post(S)``, or ``None``."""
    states = sorted(universe, key=repr)
    for subset in iter_subsets(states, max_size=max_size):
        if pre.holds(subset, domain) and not post.holds(subset, domain):
            return subset
    return None


def equivalent(a, b, universe, domain, max_size=None):
    """Semantic equivalence of two hyper-assertions over the universe."""
    return entails(a, b, universe, domain, max_size) and entails(
        b, a, universe, domain, max_size
    )


def satisfiable(assertion, universe, domain, max_size=None):
    """Some subset of the universe satisfies ``assertion``."""
    states = sorted(universe, key=repr)
    for subset in iter_subsets(states, max_size=max_size):
        if assertion.holds(subset, domain):
            return True
    return False


class EntailmentOracle:
    """Discharges the entailment side conditions of proof rules.

    Parameters
    ----------
    universe:
        Iterable of all extended states considered (ignored by the
        ``assume`` method).
    domain:
        Value domain for evaluating syntactic assertions.
    method:
        ``"brute"`` (default) or ``"sat"``.
    max_size:
        Optional cap on the subset size enumerated (keeps the cost
        polynomial when only small sets matter — unsound in general, so
        off by default).
    """

    def __init__(self, universe, domain, method="brute", max_size=None):
        self.universe = tuple(sorted(universe, key=repr))
        self.domain = domain
        self.method = method
        self.max_size = max_size
        self.assumed = []

    def entails(self, pre, post):
        """True iff ``pre |= post``; never raises on a negative verdict."""
        if self.method == "sat":
            from ..solver.encode import entails_sat, Unsupported

            try:
                return entails_sat(pre, post, self.universe, self.domain)
            except Unsupported:
                pass  # fall back to brute force for non-syntactic operands
        return entails(pre, post, self.universe, self.domain, self.max_size)

    def require(self, pre, post, context=""):
        """Raise :class:`EntailmentError` unless ``pre |= post``."""
        if not self.entails(pre, post):
            cex = find_entailment_counterexample(
                pre, post, self.universe, self.domain, self.max_size
            )
            raise EntailmentError(
                "entailment failed%s: %s |=/= %s (counterexample: %d-state set)"
                % (
                    " in " + context if context else "",
                    pre.describe(),
                    post.describe(),
                    -1 if cex is None else len(cex),
                )
            )
        return True

    def assume(self, pre, post, context=""):
        """Record an entailment as an unchecked assumption."""
        self.assumed.append((pre, post, context))
        return True


class AssumingOracle(EntailmentOracle):
    """An oracle that *records* every entailment instead of checking it.

    Use when the reasoning is schematic in an infinite domain and the user
    takes responsibility for the entailments (they are all listed on
    ``oracle.assumed`` for audit).
    """

    def __init__(self):
        super().__init__((), None)

    def entails(self, pre, post):
        self.assumed.append((pre, post, ""))
        return True

    def require(self, pre, post, context=""):
        self.assumed.append((pre, post, context))
        return True
