"""The extended semantics ``sem(C, S)`` of Def. 4.

``sem(C, S)`` lifts the big-step relation to sets of *extended* states:

    sem(C, S) = { φ | ∃σ. (φ_L, σ) ∈ S  ∧  ⟨C, σ⟩ → φ_P }

Logical states travel through executions unchanged, which is what makes
logical variables usable as execution tags (Sect. 2.2).

The algebraic properties of Lemma 1 (union-distribution, monotonicity,
``sem(C1; C2, S) = sem(C2, sem(C1, S))``, etc.) hold by construction and
are property-tested in ``tests/semantics/test_lemma1.py``.
"""

from ..lang.ast import Seq
from .bigstep import post_states
from .state import ExtState


def sem(command, states, domain, max_states=100000, cache=None, executor=None):
    """``sem(C, S)`` — extended states reachable from ``S`` (Def. 4).

    ``states`` is any iterable of :class:`ExtState`; the result is a
    ``frozenset`` of :class:`ExtState`.

    ``cache`` optionally supplies a mutable mapping ``prog_state ->
    frozenset(final prog states)`` shared across calls, so repeated
    evaluations over overlapping sets execute each program state once.
    By default the cache is per-call — callers that evaluate many sets
    of the same universe should use a
    :class:`~repro.checker.engine.CheckerEngine` (whose
    :class:`~repro.checker.engine.ImageCache` also keys by command and
    domain) rather than loop over ``sem``.

    ``executor`` selects the per-state executor (default:
    :func:`~repro.semantics.bigstep.post_states`, the compiled step
    function); the naive reference oracles pass
    :func:`~repro.semantics.bigstep.post_states_interpreted` so the
    cross-validation baseline stays fully interpreted.
    """
    if cache is None:
        cache = {}
    if executor is None:
        executor = post_states
    out = set()
    for phi in states:
        key = phi.prog
        finals = cache.get(key)
        if finals is None:
            finals = executor(command, phi.prog, domain, max_states)
            cache[key] = finals
        log = phi.log
        for sigma2 in finals:
            out.add(ExtState(log, sigma2))
    return frozenset(out)


def sem_iterate(command, states, domain, n, max_states=100000):
    """``sem(C^n, S)`` — exactly ``n`` sequential copies of ``C``.

    ``C^0`` is ``skip`` so ``sem_iterate(C, S, d, 0) == frozenset(S)``.
    Used by the Iter rule's indexed invariants (Def. 7) and by tests of
    Lemma 1(7).  One execution cache is shared across the ``n`` layers,
    so overlapping layers re-execute nothing.
    """
    cache = {}
    current = frozenset(states)
    for _ in range(n):
        current = sem(command, current, domain, max_states, cache=cache)
    return current


def reachable_under_iteration(command, states, domain, max_states=100000):
    """The pairs ``(n, sem(C^n, S))`` until the accumulated union stops
    growing, returned as a list.

    Over a finite reachable space the union ``⋃_n sem(C^n, S)`` — which is
    ``sem(C*, S)`` by Lemma 1(7) — stabilizes at some finite index; this
    helper exposes the whole prefix, which the ``WhileDesugared`` checks
    and the completeness construction both need.

    Note the individual layers ``sem(C^n, S)`` may keep cycling after the
    union has stabilized; we stop once every state of layer ``n`` has been
    seen before, which is exactly when the union is complete.
    """
    layers = []
    seen = set()
    seen_layers = set()
    cache = {}
    current = frozenset(states)
    n = 0
    while True:
        layers.append((n, current))
        seen |= current
        seen_layers.add(current)
        if len(seen) > max_states:
            raise RuntimeError("iteration union exceeded %d states" % max_states)
        nxt = sem(command, current, domain, max_states, cache=cache)
        if nxt in seen_layers and nxt <= seen:
            break
        current = nxt
        n += 1
    return layers


def sem_star_via_layers(command, states, domain, max_states=100000):
    """``sem(C*, S)`` computed as the stabilized union of the layers.

    Semantically equal to ``sem(Iter(C), S, domain)``; exists so tests can
    cross-check the two computations (Lemma 1(7)).
    """
    union = set()
    for _, layer in reachable_under_iteration(command, states, domain, max_states):
        union |= layer
    return frozenset(union)


def sem_seq_n(command, n):
    """The command ``C^n = C; ...; C`` (``skip`` when ``n == 0``)."""
    from ..lang.ast import Skip

    if n == 0:
        return Skip()
    out = command
    for _ in range(n - 1):
        out = Seq(out, command)
    return out
