#!/usr/bin/env python3
"""The push-button verifier (the repository's Hypra analogue).

Programs and hyper-assertions in concrete syntax, SAT-backed entailments,
counterexamples on failure, Thm. 5 disproofs on demand — now through the
:class:`repro.api.Session` backend-chain API (the legacy ``Verifier``
facade is a deprecated shim over exactly this).

Run:  PYTHONPATH=src python examples/verifier_demo.py
"""

from repro import Session


def main():
    print("=" * 60)
    print("1. NI and GNI in two lines each")
    s = Session(["h", "l", "y"], 0, 1)

    ni = s.verify(
        "forall <a>, <b>. a(l) == b(l)",
        "if (l > 0) { l := 1 } else { l := 0 }",
        "forall <a>, <b>. a(l) == b(l)",
    )
    print("  NI of the secure branch:    verified=%s (%s)" % (ni.verified, ni.method))

    gni = s.verify(
        "forall <a>, <b>. a(l) == b(l)",
        "y := nonDet(); l := h xor y",
        "forall <a>, <b>. exists <c>. c(h) == a(h) && c(l) == b(l)",
    )
    print("  GNI of the one-time pad:    verified=%s (%s)" % (gni.verified, gni.method))
    print("  proof rules:", dict(sorted(gni.proof.rules_used().items())))
    print("  backend chain:", [o.backend for o in gni.outcomes])

    print("=" * 60)
    print("2. a failing spec comes back with a counterexample")
    leak = s.verify(
        "forall <a>, <b>. a(l) == b(l)",
        "l := h",
        "forall <a>, <b>. a(l) == b(l)",
    )
    print("  NI of `l := h`: verified=%s" % leak.verified)
    print("  " + leak.counterexample.replace("\n", "\n  "))

    print("=" * 60)
    print("3. disproving is a first-class operation (Thm. 5)")
    disproof = s.disprove("true", "l := h", "forall <a>, <b>. a(l) == b(l)")
    print("  refuting initial set: %d states; {P'} C {¬Q} verified by the oracle"
          % len(disproof.witness))

    print("=" * 60)
    print("4. annotated loops go through the Fig. 5 rules")
    t = Session(["x"], 0, 2)
    loop = t.verify(
        "forall <a>, <b>. a(x) == b(x)",
        "while (x > 0) { x := x - 1 }",
        "forall <a>, <b>. a(x) == b(x)",
        invariant="forall <a>, <b>. a(x) == b(x)",
    )
    print("  low(x) preserved by the countdown loop: verified=%s (%s)"
          % (loop.verified, loop.method))

    print("=" * 60)
    print("5. underapproximate claims in the same session")
    w = Session(["x"], 0, 3)
    reach = w.verify(
        "exists <a>. true",
        "x := randInt(0, 3)",
        "forall n. 0 <= n <= 3 ==> exists <a>. a(x) == n",
    )
    print("  every value in [0,3] reachable: verified=%s (%s)"
          % (reach.verified, reach.method))


if __name__ == "__main__":
    main()
