"""Legacy setup shim.

The environment has no ``wheel`` package available offline, so editable
installs go through the classic ``setup.py develop`` path; all metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
