"""The ``to_wire``/``from_wire`` convenience mixin.

Kept import-free so every layer (checker, logic, gen, api, conformance)
can inherit :class:`WireCodec` without creating an import cycle with the
codec registrations (which import those layers).
"""


class WireCodec:
    """Adds ``to_wire()`` / ``from_wire()`` to a registered wire type."""

    def to_wire(self):
        """This object as a version-stamped wire document."""
        from .wire import to_wire

        return to_wire(self)

    @classmethod
    def from_wire(cls, document):
        """Decode ``document``; the result must be a ``cls`` instance."""
        from .wire import WireError, from_wire

        obj = from_wire(document)
        if not isinstance(obj, cls):
            raise WireError(
                "document decodes to %s, not %s"
                % (type(obj).__name__, cls.__name__)
            )
        return obj
