"""Differential conformance: cross-backend agreement + the shrinker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import (
    DifferentialChecker,
    run_fuzz,
    shrink_command,
    shrink_triple,
    triple_size,
)
from repro.conformance.shrink import assertion_candidates, command_candidates
from repro.gen.config import FUZZ_CONFIG
from repro.gen.triples import Triple, regenerate
from repro.lang.ast import Assign, Choice, Havoc, Iter, Seq, Skip
from repro.lang.parser import parse_command
from repro.assertions.parser import parse_assertion
from repro.assertions.syntax import SBool

#: One checker for the whole module: the shared image cache is the point.
CHECKER = DifferentialChecker(FUZZ_CONFIG)


class TestAgreementProperties:
    """Engine, naive oracle, syntactic rules and embeddings must agree."""

    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_all_backends_agree_on_generated_trials(self, seed, index):
        outcome = CHECKER.check_trial(regenerate(seed, index, FUZZ_CONFIG))
        assert outcome.agreed, "\n\n".join(
            d.describe() for d in outcome.disagreements
        )

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_loop_trials_agree(self, seed):
        trial = regenerate(seed, 0, FUZZ_CONFIG, straightline_bias=0.0, loop_bias=1.0)
        outcome = CHECKER.check_trial(trial)
        assert outcome.agreed, "\n\n".join(
            d.describe() for d in outcome.disagreements
        )

    def test_fixed_stream_has_zero_disagreements(self):
        report = run_fuzz(0, 30)
        assert report.agreed, report.summary()
        assert len(report.outcomes) == 30
        # every trial ran the full applicable check battery
        assert all(len(o.checks) >= 5 for o in report.outcomes)

    def test_sharded_run_matches_inline(self):
        inline = run_fuzz(5, 16)
        sharded = run_fuzz(5, 16, shards=3)
        assert inline.trial_log() == sharded.trial_log()
        assert sharded.shards == 3


class TestHarnessReporting:
    def test_trial_log_is_deterministic(self):
        assert run_fuzz(3, 12).trial_log() == run_fuzz(3, 12).trial_log()

    def test_summary_counts(self):
        report = run_fuzz(0, 10)
        valid = sum(1 for o in report.outcomes if o.oracle_valid)
        assert "%d valid, %d invalid" % (valid, 10 - valid) in report.summary()
        assert bool(report) is report.agreed

    def test_reported_disagreement_carries_shrunk_reproducer(self, monkeypatch):
        checker = DifferentialChecker(FUZZ_CONFIG, embeddings=False)

        def fake_check(triple, oracle=None):
            # "disagree" whenever the command writes x via Havoc
            found = []

            def walk(node):
                if isinstance(node, Havoc) and node.var == "x":
                    found.append(node)
                for attr in ("first", "second", "left", "right", "body"):
                    child = getattr(node, attr, None)
                    if child is not None:
                        walk(child)

            walk(triple.command)
            return "fake disagreement" if found else None

        monkeypatch.setattr(checker, "oracle_disagreement", fake_check)
        trial = regenerate(0, 0, FUZZ_CONFIG)
        big = Triple(
            trial.triple.pre,
            parse_command("y := 1; { x := nonDet() } + { skip }; y := 0"),
            trial.triple.post,
        )
        outcome = checker.check_trial(type(trial)(0, 0, big))
        kinds = [d.kind for d in outcome.disagreements]
        assert kinds == ["engine-vs-naive"]
        reproducer = outcome.disagreements[0].reproducer
        # greedy shrinking must reduce to exactly the offending havoc with
        # trivial pre/post
        assert reproducer.command == Havoc("x")
        assert reproducer.pre == SBool(True)
        assert reproducer.post == SBool(True)


class TestShrinker:
    def test_command_candidates_strictly_smaller(self):
        command = parse_command("x := 1; { y := nonDet() } + { loop { skip } }")

        def size(c):
            return triple_size(Triple(SBool(True), c, SBool(True)))

        for candidate in command_candidates(command):
            assert size(candidate) < size(command)

    def test_assertion_candidates_strictly_smaller(self):
        assertion = parse_assertion(
            "forall <p>. (p(x) == 0 && (exists v. v >= p(y)))"
        )

        def size(a):
            return triple_size(Triple(a, Skip(), SBool(True)))

        for candidate in assertion_candidates(assertion):
            assert size(candidate) < size(assertion)

    def test_shrink_command_to_single_havoc(self):
        command = parse_command(
            "y := 1; { x := nonDet() } + { skip }; loop { y := 0 }"
        )

        def fails(c):
            stack = [c]
            while stack:
                node = stack.pop()
                if isinstance(node, Havoc):
                    return True
                for attr in ("first", "second", "left", "right", "body"):
                    child = getattr(node, attr, None)
                    if child is not None:
                        stack.append(child)
            return False

        assert shrink_command(command, fails) == Havoc("x")

    def test_shrink_command_keeps_required_pair(self):
        # the failure needs BOTH an assignment to x and one to y: the
        # shrinker must keep a Seq of the two and drop everything else
        command = parse_command("skip; x := 1; loop { skip }; y := 2; skip")

        def fails(c):
            text_vars = set()
            stack = [c]
            while stack:
                node = stack.pop()
                if isinstance(node, Assign):
                    text_vars.add(node.var)
                for attr in ("first", "second", "left", "right", "body"):
                    child = getattr(node, attr, None)
                    if child is not None:
                        stack.append(child)
            return {"x", "y"} <= text_vars

        shrunk = shrink_command(command, fails)
        assert isinstance(shrunk, Seq)
        assert not any(
            isinstance(n, (Iter, Choice, Skip))
            for n in _walk(shrunk)
        )

    def test_shrink_triple_minimizes_assertions_too(self):
        triple = Triple(
            parse_assertion("forall <p>. (p(x) == 0 && p(y) == 0)"),
            parse_command("x := 1; y := 2"),
            parse_assertion("exists <p>. (p(x) == 1 || p(y) == 9)"),
        )

        def fails(t):
            # failure depends only on the command mentioning x
            return any(
                isinstance(n, Assign) and n.var == "x" for n in _walk(t.command)
            )

        shrunk = shrink_triple(triple, fails)
        assert shrunk.command == Assign("x", parse_command("x := 1").expr)
        assert shrunk.pre == SBool(True)
        assert shrunk.post == SBool(True)
        assert triple_size(shrunk) < triple_size(triple)

    def test_shrink_is_deterministic(self):
        triple = Triple(
            parse_assertion("exists <p>. p(x) == 0"),
            parse_command("{ x := nonDet() } + { y := 1 }; skip"),
            parse_assertion("forall <p>. p(y) == 1"),
        )

        def fails(t):
            return any(isinstance(n, Havoc) for n in _walk(t.command))

        assert shrink_triple(triple, fails) == shrink_triple(triple, fails)

    def test_shrink_drops_unneeded_invariant(self):
        triple = Triple(
            parse_assertion("exists <p>. p(x) == 0"),
            parse_command("x := nonDet()"),
            parse_assertion("forall <p>. p(y) == 1"),
            invariant=parse_assertion("forall <p>. p(x) == 0"),
        )

        def fails(t):
            return any(isinstance(n, Havoc) for n in _walk(t.command))

        assert shrink_triple(triple, fails).invariant is None


def _walk(command):
    stack = [command]
    while stack:
        node = stack.pop()
        yield node
        for attr in ("first", "second", "left", "right", "body"):
            child = getattr(node, attr, None)
            if child is not None:
                stack.append(child)


class TestFuzzCLI:
    def test_fuzz_quick_exits_zero(self, capsys):
        from repro.__main__ import main

        code = main(["fuzz", "--seed", "0", "--trials", "8", "-q"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 disagreements" in out

    def test_fuzz_streams_trial_log(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("trial 000") == 3

    def test_fuzz_bad_input(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--vars", "", "--trials", "1"]) == 3
        # bad shard/trial counts are bad input (3), not a disagreement (1)
        assert main(["fuzz", "--trials", "2", "--shards", "0"]) == 3
        assert main(["fuzz", "--trials", "0"]) == 3
        assert main(["fuzz", "--trials", "-5"]) == 3

    def test_fuzz_quick_respects_equals_form_trials(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--quick", "--trials=3"]) == 0
        out = capsys.readouterr().out
        assert "3 trials" in out
        assert out.count("trial 000") == 3

    def test_fuzz_shards_flag(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--trials", "6", "--shards", "2", "-q"]) == 0
        assert "2 shards" in capsys.readouterr().out

    def test_cli_stream_matches_report_log(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--trials", "4", "--seed", "2"]) == 0
        streamed = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("trial ")
        ]
        assert "\n".join(streamed) == run_fuzz(2, 4).trial_log()


class TestCheckFilter:
    def test_every_trial_runs_all_nine_checks_by_default(self):
        from repro.conformance import CHECK_KINDS

        report = run_fuzz(0, 6)
        assert all(o.checks == CHECK_KINDS for o in report.outcomes)

    def test_include_selector_narrows_battery(self):
        report = run_fuzz(0, 6, checks=("symbolic",))
        assert all(o.checks == ("symbolic-vs-engine",) for o in report.outcomes)

    def test_exclude_selector_drops_matches(self):
        report = run_fuzz(0, 6, checks=("-embedding",))
        for outcome in report.outcomes:
            assert "hl-embedding" not in outcome.checks
            assert "il-embedding" not in outcome.checks
            assert "engine-vs-naive" in outcome.checks

    def test_exclude_wins_over_include(self):
        checker = DifferentialChecker(
            FUZZ_CONFIG, checks=("engine", "-naive")
        )
        assert not checker.check_enabled("engine-vs-naive")
        assert not checker.check_enabled("chain-vs-oracle")

    def test_filter_survives_sharding(self):
        inline = run_fuzz(5, 12, checks=("symbolic",))
        sharded = run_fuzz(5, 12, shards=3, checks=("symbolic",))
        assert inline.trial_log() == sharded.trial_log()
        assert all(o.checks == ("symbolic-vs-engine",) for o in sharded.outcomes)

    def test_cli_checks_flag(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--trials", "4", "-q", "--checks", "symbolic"]) == 0
        assert "4 differential checks" in capsys.readouterr().out

    def test_cli_rejects_unknown_selector(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--trials", "2", "--checks", "bogus"]) == 3
        assert "matches no check kind" in capsys.readouterr().err
