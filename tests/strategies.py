"""Hypothesis strategies: thin wrappers over :mod:`repro.gen`.

All generation logic — the domain-safe clamped expressions, the command
grammar, the closed Def. 9 assertions — lives in the library's seeded
generator package now.  Each strategy here just draws a 64-bit seed and
delegates to the corresponding ``repro.gen`` generator, so Hypothesis
keeps its role (example scheduling, replay, the failure database) while
the test suite and the conformance fuzz harness share one generator
implementation.  Shrinking happens at two levels: Hypothesis shrinks the
seed, and the conformance package's :mod:`repro.conformance.shrink`
minimizes any reproducer structurally.
"""

import random

from hypothesis import strategies as st

from repro.gen import DEFAULT_CONFIG, clamped as _clamped  # noqa: F401
from repro.gen.assertions import gen_atom
from repro.gen.programs import (
    gen_atomic_command,
    gen_command,
    gen_condition,
    gen_safe_expr,
    gen_straightline,
)

VARS = DEFAULT_CONFIG.pvars
LO, HI = DEFAULT_CONFIG.lo, DEFAULT_CONFIG.hi
STATE_NAMES = DEFAULT_CONFIG.state_names
VALUE_NAMES = DEFAULT_CONFIG.value_names

_SEEDS = st.integers(0, 2 ** 64 - 1)


def clamped(expr):
    """Clamp an expression into the default ``[LO, HI]`` domain."""
    return _clamped(expr, LO, HI)


def _delegated(generate):
    """A strategy drawing a seed and applying a ``repro.gen`` generator."""
    return _SEEDS.map(lambda seed: generate(random.Random(seed)))


def safe_exprs():
    """Expressions whose value stays in the domain."""
    return _delegated(lambda rng: gen_safe_expr(rng, DEFAULT_CONFIG))


def conditions():
    """Simple comparisons between a variable and a literal or variable."""
    return _delegated(lambda rng: gen_condition(rng, DEFAULT_CONFIG))


def atomic_commands():
    return _delegated(lambda rng: gen_atomic_command(rng, DEFAULT_CONFIG))


def commands(max_depth=3, allow_iter=True):
    """Domain-safe random commands."""
    return _delegated(
        lambda rng: gen_command(
            rng, DEFAULT_CONFIG, max_depth=max_depth, allow_iter=allow_iter
        )
    )


def loop_free_commands(max_depth=3):
    """Commands without Iter (for termination-sensitive tests)."""
    return commands(max_depth=max_depth, allow_iter=False)


def straightline_commands(max_len=4):
    """Seq-chains of atomic commands (for the syntactic wp engine)."""
    return _delegated(
        lambda rng: gen_straightline(rng, DEFAULT_CONFIG, max_len=max_len)
    )


def hyper_atoms(states, values):
    """Comparisons between lookups/literals of the bound names."""
    states, values = tuple(states), tuple(values)
    return _delegated(lambda rng: gen_atom(rng, DEFAULT_CONFIG, states, values))


def hyper_assertions(max_depth=3, states=(), values=()):
    """Random Def. 9 assertions with all lookups bound."""
    from repro.gen.assertions import gen_assertion

    states, values = tuple(states), tuple(values)
    return _delegated(
        lambda rng: gen_assertion(
            rng, DEFAULT_CONFIG, max_depth=max_depth, states=states, values=values
        )
    )
