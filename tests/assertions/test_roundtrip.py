"""Round-trip property: assertion parser ↔ ASCII printer on generated input."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assertions.parser import format_assertion, parse_assertion
from repro.assertions.printer import pretty_assertion
from repro.gen import DEFAULT_CONFIG, GenConfig
from repro.gen.assertions import gen_assertion

from tests.strategies import hyper_assertions

WIDE_CONFIG = GenConfig(pvars=("x", "y", "z"), hi=4, max_assertion_depth=4)


class TestAssertionRoundTrip:
    @given(hyper_assertions(max_depth=3))
    @settings(max_examples=150)
    def test_parse_format_roundtrip(self, assertion):
        assert parse_assertion(format_assertion(assertion)) == assertion

    @given(st.integers(0, 2 ** 64 - 1))
    @settings(max_examples=100)
    def test_roundtrip_on_deep_generated_assertions(self, seed):
        assertion = gen_assertion(random.Random(seed), WIDE_CONFIG)
        assert parse_assertion(format_assertion(assertion)) == assertion

    @given(hyper_assertions(max_depth=2))
    @settings(max_examples=50)
    def test_format_is_deterministic(self, assertion):
        assert format_assertion(assertion) == format_assertion(assertion)

    @given(hyper_assertions(max_depth=2))
    @settings(max_examples=50)
    def test_unicode_printer_total_on_generated_input(self, assertion):
        # the paper-style printer has no parser; it must still render
        # every generated assertion without raising
        assert pretty_assertion(assertion)

    def test_generated_assertions_are_closed(self):
        # parseability implies closedness: every lookup/variable bound
        rng = random.Random(7)
        for _ in range(100):
            assertion = gen_assertion(rng, DEFAULT_CONFIG)
            assert not assertion.free_value_vars()
            parse_assertion(format_assertion(assertion))
