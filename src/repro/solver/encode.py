"""Grounding syntactic hyper-assertions into propositional logic.

Over a finite universe ``U`` of extended states, a set ``S ⊆ U`` is
described by one Boolean *membership atom* per state.  A Def. 9 assertion
grounds as:

- ``∀⟨φ⟩. A``  ⟶  ``⋀_{u∈U} (m_u → ⟦A⟧[φ:=u])``
- ``∃⟨φ⟩. A``  ⟶  ``⋁_{u∈U} (m_u ∧ ⟦A⟧[φ:=u])``
- value quantifiers expand over the finite domain,
- closed atomic comparisons evaluate to constants.

``P |= Q`` then reduces to UNSAT of ``⟦P⟧ ∧ ¬⟦Q⟧`` — the same shape of
reduction the Hypra verifier performs with Z3, here with our own DPLL.

The grounding pass is compile-once per query: each distinct comparison
leaf is lowered to a closure (:func:`repro.compile.hyper.compile_hexpr`)
the first time it is seen, the per-state atom literals are built once
up front, and quantifier instantiation mutates a single binding
environment (set/restore) instead of copying a dict per instantiation —
the ``U^depth × |D|^vals`` leaf evaluations are then plain closure
calls.  The solver-facing entry points additionally key their atoms by
the state's *interned id* (its position in the universe tuple), so the
formula, CNF and DPLL layers hash machine ints instead of whole
extended states.
"""

from ..assertions.base import Assertion
from ..assertions.semantic import AndAssertion, NotAssertion, OrAssertion
from ..assertions.syntax import (
    SAnd,
    SBool,
    SCmp,
    SExistsState,
    SExistsVal,
    SForallState,
    SForallVal,
    SOr,
    SynAssertion,
)
import threading

from ..compile.hyper import compile_cmp, compile_hexpr
from ..errors import SolverError
from .formula import FAnd, FFalse, FNot, FOr, FTrue, FVar, f_or, fand, fnot, fvar
from .sat import IncrementalSolver, solve_formula

_MISSING = object()


class Unsupported(Exception):
    """Raised when an assertion is outside the groundable fragment."""


def _membership_atom(state):
    return ("member", state)


def _interned_atom(universe):
    """Membership atoms keyed by interned id — ``("m", i)`` for the
    ``i``-th state of ``universe`` — so every downstream dictionary
    (formula dedup, CNF mapping, DPLL assignments and watch lists)
    hashes a small int instead of a whole extended state."""
    index = {u: ("m", i) for i, u in enumerate(universe)}
    return index.__getitem__


def ground_assertion(
    assertion, universe, domain, sigma_env=None, delta_env=None, atom=_membership_atom
):
    """Ground ``assertion`` to a propositional formula over membership atoms.

    ``universe`` is the tuple of all extended states; the resulting
    formula's atoms are ``atom(φ)`` pairs — ``("member", φ)`` by default.
    The symbolic validity encoder passes distinct ``atom`` constructors to
    keep the precondition's selector namespace and the postcondition's
    post-state namespace apart within one query.
    """
    grounder = _Grounder(tuple(universe), domain, atom)
    return grounder.ground(assertion, dict(sigma_env or {}), dict(delta_env or {}))


class _Grounder:
    """One grounding pass over one universe/atom namespace.

    Holds the prebuilt positive/negative atom literals (one pair per
    state id) and the memo of compiled comparison closures; the
    recursion threads two *mutable* binding environments, restoring
    each binding on exit instead of copying the dict per instantiation.
    """

    __slots__ = ("universe", "domain", "pos", "neg", "_cmps")

    def __init__(self, universe, domain, atom):
        self.universe = universe
        self.domain = domain
        self.pos = tuple(fvar(atom(u)) for u in universe)
        self.neg = tuple(fnot(v) for v in self.pos)
        self._cmps = {}

    def _cmp_fn(self, node):
        # keyed by node identity: the assertion tree outlives the pass,
        # so ids are stable for its duration
        fn = self._cmps.get(id(node))
        if fn is None:
            op = compile_cmp(node.op)
            left = compile_hexpr(node.left)
            right = compile_hexpr(node.right)

            def fn(sigma, delta, op=op, left=left, right=right):
                return op(left(sigma, delta), right(sigma, delta))

            self._cmps[id(node)] = fn
        return fn

    def ground(self, node, sigma, delta):
        # semantic combinator wrappers around syntactic parts remain groundable
        if isinstance(node, AndAssertion):
            return fand(*(self.ground(p, sigma, delta) for p in node.parts))
        if isinstance(node, OrAssertion):
            return f_or(*(self.ground(p, sigma, delta) for p in node.parts))
        if isinstance(node, NotAssertion):
            return fnot(self.ground(node.operand, sigma, delta))
        if not isinstance(node, SynAssertion):
            raise Unsupported("cannot ground %r" % (node,))

        if isinstance(node, SBool):
            return FTrue() if node.value else FFalse()
        if isinstance(node, SCmp):
            return FTrue() if self._cmp_fn(node)(sigma, delta) else FFalse()
        if isinstance(node, SAnd):
            left = self.ground(node.left, sigma, delta)
            if isinstance(left, FFalse):  # mirror `and` short-circuit
                return left
            return fand(left, self.ground(node.right, sigma, delta))
        if isinstance(node, SOr):
            left = self.ground(node.left, sigma, delta)
            if isinstance(left, FTrue):  # mirror `or` short-circuit
                return left
            return f_or(left, self.ground(node.right, sigma, delta))
        if isinstance(node, (SForallVal, SExistsVal)):
            name = node.var
            body = node.body
            universal = isinstance(node, SForallVal)
            absorbing = FFalse if universal else FTrue
            old = delta.get(name, _MISSING)
            parts = []
            for v in self.domain:
                delta[name] = v
                part = self.ground(body, sigma, delta)
                if isinstance(part, absorbing):  # decided: skip the rest
                    parts = [part]
                    break
                parts.append(part)
            if old is _MISSING:
                delta.pop(name, None)  # empty domain: never bound
            else:
                delta[name] = old
            return fand(*parts) if universal else f_or(*parts)
        if isinstance(node, (SForallState, SExistsState)):
            name = node.state
            body = node.body
            old = sigma.get(name, _MISSING)
            parts = []
            if isinstance(node, SForallState):
                lits, combine, inner = self.neg, fand, f_or
            else:
                lits, combine, inner = self.pos, f_or, fand
            for i, u in enumerate(self.universe):
                sigma[name] = u
                parts.append(inner(lits[i], self.ground(body, sigma, delta)))
            if old is _MISSING:
                sigma.pop(name, None)  # empty universe: never bound
            else:
                sigma[name] = old
            return combine(*parts)
        raise Unsupported("cannot ground %r" % (node,))


def entails_sat(pre, post, universe, domain, atom=None):
    """Decide ``pre |= post`` over subsets of ``universe`` via SAT.

    Encodes ``⟦pre⟧ ∧ ¬⟦post⟧`` and reports entailment iff it is UNSAT.
    Raises :class:`Unsupported` when either side cannot be grounded.
    With ``atom=None`` the membership atoms are keyed by interned state
    id (they never leave this function).
    """
    if not isinstance(pre, Assertion) or not isinstance(post, Assertion):
        raise Unsupported("operands must be assertions")
    universe = tuple(universe)
    if atom is None:
        atom = _interned_atom(universe)
    query = fand(
        ground_assertion(pre, universe, domain, atom=atom),
        fnot(ground_assertion(post, universe, domain, atom=atom)),
    )
    return solve_formula(query) is None


class IncrementalEntailment:
    """Entailment queries over one universe on a *persistent* solver.

    :func:`entails_sat` pays the full pipeline per query — ground,
    Tseitin-encode into a fresh CNF, solve from scratch — although a
    chain run issues thousands of near-identical queries over the same
    membership atoms.  This class keeps one
    :class:`~repro.solver.sat.IncrementalSolver` alive for the
    universe's lifetime and exploits two structural facts:

    1. the Tseitin encoding (:func:`~repro.solver.cnf.tseitin`) emits
       *biconditional* definitions — each definition clause set is a
       conservative extension, true in every model — so definitional
       clauses can be added once, globally, and shared by all queries;
    2. a query is then a single solver call under one **assumption**
       (the root literal of ``⟦pre⟧ ∧ ¬⟦post⟧``): UNSAT under the
       assumption iff entailed.  No per-query activation groups means
       clauses learned refuting one query carry over undiminished to
       the next.

    Subformula encodings are memoized structurally (formulas are frozen
    dataclasses), so shared subtrees across queries — the common case:
    the same ``pre`` against many ``post``\\ s — encode once; grounded
    formulas are additionally cached per assertion object, skipping the
    grounding walk entirely on repeats.  Verdicts are identical to
    :func:`entails_sat`, which the solver tests assert; thread-safe
    (one lock per instance, matching the oracle's sharing).
    """

    def __init__(self, universe, domain):
        self.universe = tuple(universe)
        self.domain = domain
        self._atom = _interned_atom(self.universe)
        self._solver = IncrementalSolver()
        self._atom_vars = {}  # atom key -> solver variable
        self._lits = {}  # formula (structural) -> solver literal
        self._grounded = {}  # id(assertion) -> (assertion ref, formula)
        self._lock = threading.Lock()
        self.queries = 0

    def _ground(self, assertion):
        entry = self._grounded.get(id(assertion))
        if entry is not None and entry[0] is assertion:
            return entry[1]
        formula = ground_assertion(
            assertion, self.universe, self.domain, atom=self._atom
        )
        # keyed by identity, the ref in the value keeps the id stable
        self._grounded[id(assertion)] = (assertion, formula)
        return formula

    def _lit(self, formula):
        """The solver literal defined (once) to be ``formula``."""
        lit = self._lits.get(formula)
        if lit is not None:
            return lit
        solver = self._solver
        if isinstance(formula, FVar):
            var = self._atom_vars.get(formula.name)
            if var is None:
                var = solver.new_var()
                self._atom_vars[formula.name] = var
            lit = var
        elif isinstance(formula, FTrue):
            lit = solver.new_var()
            solver.add_clause((lit,))
        elif isinstance(formula, FFalse):
            var = solver.new_var()
            solver.add_clause((-var,))
            lit = var
        elif isinstance(formula, FNot):
            lit = -self._lit(formula.operand)
        elif isinstance(formula, (FAnd, FOr)):
            parts = [self._lit(part) for part in formula.parts]
            var = solver.new_var()
            if isinstance(formula, FAnd):
                for part in parts:
                    solver.add_clause((-var, part))
                solver.add_clause(tuple(-part for part in parts) + (var,))
            else:
                solver.add_clause((-var,) + tuple(parts))
                for part in parts:
                    solver.add_clause((-part, var))
            lit = var
        else:
            raise SolverError("cannot encode %r" % (formula,))
        self._lits[formula] = lit
        return lit

    def entails(self, pre, post):
        """``pre |= post`` over subsets of the universe.

        Raises :class:`Unsupported` when either side cannot be
        grounded (callers fall back to brute force, exactly as with
        :func:`entails_sat`).
        """
        if not isinstance(pre, Assertion) or not isinstance(post, Assertion):
            raise Unsupported("operands must be assertions")
        with self._lock:
            query = fand(self._ground(pre), fnot(self._ground(post)))
            root = self._lit(query)
            self.queries += 1
            return self._solver.solve(assumptions=(root,)) is None


def entailment_model(pre, post, universe, domain, atom=None):
    """A counterexample set ``S`` with ``pre(S) ∧ ¬post(S)`` via SAT.

    Returns a frozenset of extended states, or ``None`` when entailed.
    """
    universe = tuple(universe)
    if atom is None:
        atom = _interned_atom(universe)
    query = fand(
        ground_assertion(pre, universe, domain, atom=atom),
        fnot(ground_assertion(post, universe, domain, atom=atom)),
    )
    model = solve_formula(query)
    if model is None:
        return None
    return frozenset(u for u in universe if model.get(atom(u), False))


def satisfiable_sat(assertion, universe, domain, atom=None):
    """Whether some subset of ``universe`` satisfies ``assertion`` (SAT)."""
    universe = tuple(universe)
    if atom is None:
        atom = _interned_atom(universe)
    return (
        solve_formula(ground_assertion(assertion, universe, domain, atom=atom))
        is not None
    )
