#!/usr/bin/env python3
"""Quantitative information flow (App. B, Fig. 10).

Bounding the number of distinct outputs is a hyperproperty over an
*unbounded* number of executions; exactly pinning it is not even
hypersafety — it needs assertions about set cardinality, which Hyper
Hoare Logic's set-level assertions state directly.

Run:  python examples/quantitative_flow.py
"""

from repro.checker import Universe
from repro.hyperprops import leakage_table, output_values, qif_triples_hold
from repro.lang import parse_command, pretty
from repro.values import IntRange


def main():
    # Fig. 10 (with the min(l,h) bound its claims require; the figure's
    # `max` appears to be a typo — see EXPERIMENTS.md):
    command = parse_command(
        """
        o := 0;
        i := 0;
        while (i < min(l, h)) {
            r := nonDet();
            assume 0 <= r <= 1;
            o := o + r;
            i := i + 1
        }
        """
    )
    uni = Universe(["h", "l", "o", "i", "r"], IntRange(0, 2))
    print("program C_l:")
    print("  " + pretty(command).replace("\n", "\n  "))
    print()

    print("the leak: observing o teaches h >= o")
    for h in uni.domain:
        outs = sorted(output_values(command, uni, "o", {"h": h}))
        print("  h = %d  ->  possible o: %s" % (h, outs))
    print()

    print("per low-input leakage (the App. B table):")
    print("  %-4s %-9s %-18s %-18s" % ("l=v", "#outputs", "min-capacity", "Shannon"))
    for v, count, cap, ent in leakage_table(command, uni, "o", "l", "h"):
        print("  %-4d %-9d %-18.4f %-18.4f" % (v, count, cap, ent))
    print()

    print("the App. B hyper-triples for v = 1:")
    at_most, exactly = qif_triples_hold(command, uni, "o", "l", "h", 1)
    print("  {□(h≥0 ∧ l=1)} C_l {|{φ(o) | φ∈S}| ≤ 2}  (problem 1):", at_most)
    print("  {□(h≥0 ∧ l=1)} C_l {|{φ(o) | φ∈S}| = 2}  (problem 2):", exactly)
    print()
    print("problem 1 is hypersafety but not k-safety for any k;")
    print("problem 2 is beyond hypersafety — only set-level assertions express it.")


if __name__ == "__main__":
    main()
