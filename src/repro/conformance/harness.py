"""The cross-backend fuzz harness: seeded trials, optional process shards.

:func:`run_fuzz` drives :class:`~repro.conformance.differential.
DifferentialChecker` over the deterministic trial stream of
:func:`repro.gen.triples.trials` and aggregates a :class:`FuzzReport`.

Determinism contract: for a fixed ``(seed, count, config, biases)`` the
*trial log* — :meth:`FuzzReport.trial_log` — is identical byte-for-byte
on every run, every platform and every shard count.  Sharding cannot
perturb it because trial ``i`` is regenerated from ``(seed, i)`` alone
and the report reassembles outcomes by index; only the measured
``elapsed`` varies run to run.

With ``shards > 1`` the trial indices are dealt round-robin to worker
processes; each worker owns one checker (one session, one image cache),
so per-state executions amortize within a shard exactly as they do in a
serial run.
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import monotonic
from typing import Tuple

from ..codec.mixin import WireCodec
from ..gen.config import FUZZ_CONFIG
from ..gen.triples import regenerate
from .differential import DifferentialChecker, TrialOutcome


@dataclass(frozen=True)
class FuzzReport(WireCodec):
    """Aggregate outcome of one fuzz run.

    Wire-serializable (kind ``fuzz-report``): ``python -m repro fuzz
    --json`` emits exactly this document, and
    ``FuzzReport.from_wire`` rebuilds the report — trials, outcomes and
    shrunk disagreement reproducers included.
    """

    seed: int
    count: int
    outcomes: Tuple[TrialOutcome, ...]
    elapsed: float = 0.0
    shards: int = 1

    @property
    def disagreements(self):
        out = []
        for outcome in self.outcomes:
            out.extend(outcome.disagreements)
        return tuple(out)

    @property
    def agreed(self):
        return not self.disagreements

    def __bool__(self):
        return self.agreed

    def trial_log(self):
        """One deterministic line per trial (the byte-for-byte contract)."""
        return "\n".join(outcome.describe_line() for outcome in self.outcomes)

    def summary(self):
        """Deterministic counts; timings reported separately by the CLI."""
        valid = sum(1 for o in self.outcomes if o.oracle_valid)
        checks = sum(len(o.checks) for o in self.outcomes)
        lines = [
            "fuzz: seed %d, %d trials (%d valid, %d invalid), "
            "%d differential checks, %d disagreements"
            % (
                self.seed,
                self.count,
                valid,
                self.count - valid,
                checks,
                len(self.disagreements),
            )
        ]
        for disagreement in self.disagreements:
            lines.append(disagreement.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# worker side (process sharding)
# ---------------------------------------------------------------------------

_WORKER_CHECKER = None
_WORKER_PARAMS = None


def _init_fuzz_worker(config, embeddings, samples, checks):
    global _WORKER_CHECKER, _WORKER_PARAMS
    _WORKER_CHECKER = DifferentialChecker(
        config, embeddings=embeddings, samples=samples, checks=checks
    )
    _WORKER_PARAMS = (config,)


def _run_fuzz_chunk(seed, indices, straightline_bias, loop_bias):
    """Check the given trial indices → list of :class:`TrialOutcome`.

    Everything returned is built from module-level frozen dataclasses
    (trials, triples, disagreements), so the outcomes pickle back to the
    parent unchanged.
    """
    checker = _WORKER_CHECKER
    (config,) = _WORKER_PARAMS
    out = []
    try:
        for index in indices:
            trial = regenerate(seed, index, config, straightline_bias, loop_bias)
            out.append(checker.check_trial(trial))
    finally:
        # the parallel-vs-sequential check builds a nested worker pool;
        # close it while this shard worker is alive — interpreter-exit
        # teardown of a live nested pool deadlocks the shard join
        checker.close()
    return out


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def run_fuzz(
    seed,
    count,
    config=FUZZ_CONFIG,
    shards=None,
    embeddings=True,
    samples=25,
    straightline_bias=0.4,
    loop_bias=0.15,
    on_outcome=None,
    checks=None,
):
    """Differentially check ``count`` seeded trials → :class:`FuzzReport`.

    ``shards=None`` or ``1`` runs inline (no processes).  ``on_outcome``
    is an optional callback invoked with each :class:`TrialOutcome` in
    index order (the CLI uses it to stream the trial log); under
    sharding it runs in the parent, after all workers finish.
    ``checks`` is the :class:`DifferentialChecker` selector tuple
    (substring include / ``-``-prefixed exclude against the check
    kinds); it ships to shard workers with the other checker parameters.
    """
    checks = None if checks is None else tuple(checks)
    started = monotonic()
    if shards is not None and shards < 1:
        raise ValueError("shards must be >= 1, got %d" % shards)
    effective = 1 if shards is None else min(shards, max(1, count))
    if effective <= 1:
        checker = DifferentialChecker(
            config, embeddings=embeddings, samples=samples, checks=checks
        )
        outcomes = []
        for index in range(count):
            trial = regenerate(seed, index, config, straightline_bias, loop_bias)
            outcome = checker.check_trial(trial)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
    else:
        index_chunks = [list(range(k, count, effective)) for k in range(effective)]
        by_index = {}
        with ProcessPoolExecutor(
            max_workers=effective,
            initializer=_init_fuzz_worker,
            initargs=(config, embeddings, samples, checks),
        ) as pool:
            futures = [
                pool.submit(_run_fuzz_chunk, seed, chunk, straightline_bias, loop_bias)
                for chunk in index_chunks
            ]
            for future in futures:
                for outcome in future.result():
                    by_index[outcome.trial.index] = outcome
        outcomes = [by_index[i] for i in range(count)]
        if on_outcome is not None:
            for outcome in outcomes:
                on_outcome(outcome)
    elapsed = monotonic() - started
    return FuzzReport(
        seed=seed,
        count=count,
        outcomes=tuple(outcomes),
        elapsed=elapsed,
        shards=effective,
    )
