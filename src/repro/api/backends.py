"""Pluggable verification backends.

Each backend wraps one of the repository's engines behind the small
:class:`Backend` protocol, mirroring the paper's separation of concerns:

- :class:`SyntacticWPBackend` — the Fig. 3 backward syntactic-wp rules
  with the closing entailment discharged by the session oracle;
- :class:`LoopBackend` — the Fig. 5 annotated-loop rules (WhileSync) for
  ``while`` programs carrying an invariant annotation;
- :class:`SymbolicBackend` — the one-SAT-call validity decision over
  the groundable fragment (re-exported from
  :mod:`repro.symbolic.backend`);
- :class:`ExhaustiveBackend` — the Def. 5 semantic oracle, enumerating
  every initial set over the universe;
- :class:`SampledBackend` — the capped / randomized oracle for universes
  whose full powerset is out of reach.

Backends never raise on an out-of-fragment task or a blown budget: they
return an inconclusive :class:`~repro.api.outcome.Undecided` and the
session's chain moves on.  Decisive results are
:class:`~repro.api.outcome.Proved` (carrying the checked derivation when
the engine builds one) or :class:`~repro.api.outcome.Refuted` (carrying
the concrete :class:`~repro.checker.counterexample.Witness`).  The
``session`` argument of :meth:`Backend.attempt` supplies the shared
state (``session.universe`` and ``session.oracle``).
"""

import random
from typing import Protocol

from ..assertions.syntax import SynAssertion
from ..checker.counterexample import Witness
from ..errors import EntailmentError, ProofError
from ..lang.analysis import is_loop_free
from ..lang.sugar import match_while
from ..logic.core_rules import rule_cons
from ..logic.loop_rules import rule_while_sync, while_sync_body_pre
from ..logic.outline import verify_straightline
from ..symbolic.backend import SymbolicBackend  # noqa: F401  (re-export)
from .outcome import Proved, Refuted, Undecided


class Backend(Protocol):
    """What a verification backend must provide.

    ``supports`` is a cheap syntactic filter (wrong fragment → the chain
    skips the backend without starting its budget); ``attempt`` does the
    actual work and must return an :class:`~repro.api.outcome.Outcome`,
    using :class:`~repro.api.outcome.Undecided` rather than raising when
    it cannot decide.
    """

    name: str

    def supports(self, task):
        ...

    def attempt(self, task, session, budget=None):
        ...


def _expired(budget):
    return budget is not None and budget.expired


#: Outcomes of :func:`_scan_initial_sets`.
_REFUTED, _PASSED, _EXHAUSTED = "refuted", "passed", "budget-exhausted"


def _scan_initial_sets(task, session, budget, max_size=None):
    """The one oracle enumeration every backend shares.

    Walks the candidate initial sets (up to ``max_size``) through the
    session's precomputed-image :class:`~repro.checker.engine.CheckerEngine`
    — every program state is executed at most once per command, cached in
    ``session.images`` across tasks and threads — polling the budget
    between sets.  Returns ``(status, witness, checked)`` where
    ``status`` is ``_REFUTED`` (``witness`` is the
    :class:`~repro.checker.counterexample.Witness`), ``_PASSED`` (no
    enumerated set refutes the triple) or ``_EXHAUSTED`` (budget tripped
    after ``checked`` sets).
    """
    engine = session.engine
    checked = 0
    if engine.bitset:
        scanner = engine._parallel_scanner()
        if scanner is not None:
            outcome = scanner.run(
                task.pre,
                task.command,
                task.post,
                max_size=max_size,
                expired=lambda: _expired(budget),
            )
            if outcome is not None:
                kind, payload = outcome
                if kind == "exhausted":
                    return _EXHAUSTED, None, payload
                result = payload
                if result.valid:
                    return _PASSED, None, result.checked_sets
                witness = Witness(result.witness_pre, result.witness_post)
                return _REFUTED, witness, result.checked_sets
            # ineligible scan: fall through to the serial enumeration
        # walk raw id-bitmasks and decode only the refuting candidate —
        # accepted sets never leave machine-word form
        universe = session.universe
        for chosen, acc, ok in engine.scan_masks(
            task.pre, task.command, task.post, max_size=max_size
        ):
            if _expired(budget):
                return _EXHAUSTED, None, checked
            checked += 1
            if acc is None:  # precondition rejected the subset
                continue
            if not ok:
                witness = Witness(universe.states_of(chosen), universe.states_of(acc))
                return _REFUTED, witness, checked
        return _PASSED, None, checked
    for subset, post_set, ok in engine.scan(
        task.pre, task.command, task.post, max_size=max_size
    ):
        if _expired(budget):
            return _EXHAUSTED, None, checked
        checked += 1
        if post_set is None:  # precondition rejected the subset
            continue
        if not ok:
            return _REFUTED, Witness(subset, post_set), checked
    return _PASSED, None, checked


def _oracle_suffix(oracle, mark):
    """The methods that actually decided entailments since ``mark``."""
    used = oracle.used_since(mark)
    return "+".join(used) if used else oracle.method


class SyntacticWPBackend:
    """Fig. 3 backward rules: syntactic wp + one closing entailment.

    Applies to loop-free straight-line commands with a syntactic
    postcondition.  A failed closing entailment is a genuine refutation
    (the wp is exact for straight-line code), so this backend then hunts
    for a semantic counterexample to report; ``max_cex_size`` caps that
    search.
    """

    name = "syntactic-wp"

    def __init__(self, max_cex_size=None):
        self.max_cex_size = max_cex_size

    def supports(self, task):
        return is_loop_free(task.command) and isinstance(task.post, SynAssertion)

    def attempt(self, task, session, budget=None):
        oracle = session.oracle
        mark = oracle.used_mark()
        try:
            proof = verify_straightline(task.pre, task.command, task.post, oracle)
        except EntailmentError:
            return self._refute(task, session, budget, oracle, mark)
        except ProofError as err:
            return Undecided(self.name, self.name, reason=str(err))
        method = "%s+%s" % (self.name, _oracle_suffix(oracle, mark))
        return Proved(
            self.name, method, proof=proof, assumptions=proof.all_assumptions()
        )

    def _refute(self, task, session, budget, oracle, mark):
        method = "%s+%s" % (self.name, _oracle_suffix(oracle, mark))
        status, witness, checked = _scan_initial_sets(
            task, session, budget, self.max_cex_size
        )
        if status is _EXHAUSTED:
            return Undecided(
                self.name,
                method,
                reason="budget exhausted after %d sets while searching for a "
                "counterexample" % checked,
            )
        if status is _REFUTED:
            return Refuted(self.name, method, witness=witness)
        # The closing entailment failed but no initial set (within the cap)
        # refutes the triple — report the refutation without a witness,
        # matching the legacy facade's behavior under ``max_set_size``.
        return Refuted(
            self.name,
            method,
            note="wp entailment failed; no counterexample within the size cap",
        )


class LoopBackend:
    """Fig. 5 annotated-loop rules (WhileSync).

    Applies to ``while (b) { C }`` tasks carrying a syntactic invariant
    annotation with a loop-free body.  Establishes ``{I ∧ □b} C {I}`` by
    syntactic wp, closes the loop with WhileSync, and bridges the
    annotation to the task's pre/post with Cons.  A failed entailment
    here only means the *annotation* does not work — the triple may still
    hold — so the outcome is :class:`Undecided`, never :class:`Refuted`.
    """

    name = "loop"

    def supports(self, task):
        return task.invariant is not None and match_while(task.command) is not None

    def attempt(self, task, session, budget=None):
        guard, body = match_while(task.command)
        invariant = task.invariant
        if not isinstance(invariant, SynAssertion):
            return Undecided(self.name, self.name, reason="invariant must be syntactic")
        if not is_loop_free(body):
            return Undecided(
                self.name, self.name, reason="nested loops are not supported"
            )
        oracle = session.oracle
        mark = oracle.used_mark()
        try:
            body_proof = verify_straightline(
                while_sync_body_pre(invariant, guard), body, invariant, oracle
            )
            loop_proof = rule_while_sync(invariant, guard, body_proof, oracle)
            proof = rule_cons(
                task.pre, task.post, loop_proof, oracle, "loop annotation bridge"
            )
        except EntailmentError as err:
            return Undecided(
                self.name,
                "%s+%s" % (self.name, _oracle_suffix(oracle, mark)),
                reason="invariant not established: %s" % err,
            )
        except ProofError as err:
            return Undecided(self.name, self.name, reason=str(err))
        method = "loop-sync+%s" % _oracle_suffix(oracle, mark)
        return Proved(
            self.name, method, proof=proof, assumptions=proof.all_assumptions()
        )


class ExhaustiveBackend:
    """Def. 5 semantic oracle: enumerate every initial set.

    Complete relative to the universe — always decides, given time.  The
    budget is polled between initial sets, so a blown budget yields an
    inconclusive outcome rather than an unbounded stall.
    """

    name = "exhaustive"
    method = "oracle"

    def supports(self, task):
        return True

    def attempt(self, task, session, budget=None):
        status, witness, checked = _scan_initial_sets(task, session, budget)
        if status is _EXHAUSTED:
            return Undecided(
                self.name,
                self.method,
                reason="budget exhausted after %d of %d initial sets"
                % (checked, 2 ** session.universe.size()),
            )
        if status is _REFUTED:
            return Refuted(self.name, self.method, witness=witness)
        return Proved(self.name, self.method)


class SampledBackend:
    """Capped or randomized semantic oracle for large universes.

    Two modes:

    - ``samples=None`` (default): enumerate initial sets of size at most
      ``max_size``.  A refutation is always sound; a pass is definitive
      only when the cap actually covers the universe.  A genuinely
      capped pass stays inconclusive (the chain's later backends may
      still refute the triple) unless ``claim_capped_pass=True``, which
      reports it as proved with the cap recorded in the method string
      (``oracle(≤k)``) — the legacy facade's documented
      under-approximation, only defensible as the *last* backend of a
      chain (see :func:`~repro.api.session.default_backends`);
    - ``samples=n``: draw ``n`` random subsets (sizes up to
      ``max_size``).  Only useful to *find* counterexamples: a refutation
      is sound, a pass is merely evidence and stays inconclusive.
    """

    name = "sampled"

    def __init__(self, max_size=None, samples=None, seed=0, claim_capped_pass=False):
        self.max_size = max_size
        self.samples = samples
        self.seed = seed
        self.claim_capped_pass = claim_capped_pass

    def supports(self, task):
        return True

    def attempt(self, task, session, budget=None):
        if self.samples is None:
            return self._capped(task, session, budget)
        return self._sampled(task, session, budget)

    def _capped(self, task, session, budget):
        method = (
            "oracle" if self.max_size is None else "oracle(≤%d)" % self.max_size
        )
        status, witness, checked = _scan_initial_sets(
            task, session, budget, self.max_size
        )
        if status is _EXHAUSTED:
            return Undecided(
                self.name,
                method,
                reason="budget exhausted after %d initial sets" % checked,
            )
        if status is _REFUTED:
            return Refuted(self.name, method, witness=witness)
        # A pass is only definitive when every initial set was enumerated.
        complete = self.max_size is None or self.max_size >= session.universe.size()
        if complete or self.claim_capped_pass:
            return Proved(self.name, method)
        return Undecided(
            self.name,
            method,
            reason="no refutation among initial sets of size ≤ %d "
            "(under-approximate pass, not a proof)" % self.max_size,
        )

    def _sampled(self, task, session, budget):
        from ..compile import compile_assertion

        universe = session.universe
        domain = universe.domain
        method = "sampled(%d)" % self.samples
        rng = random.Random(self.seed)
        states = list(universe.ext_states())
        cap = self.max_size if self.max_size is not None else 4
        # the draws are independent sets, so whole-set (compiled) holds —
        # compiled once per task through the session's compile cache
        pre_holds = compile_assertion(task.pre, domain, session.compiles).holds
        post_holds = compile_assertion(task.post, domain, session.compiles).holds
        for drawn in range(self.samples):
            if _expired(budget):
                return Undecided(
                    self.name,
                    method,
                    reason="budget exhausted after %d samples" % drawn,
                )
            k = rng.randint(0, cap)
            subset = frozenset(rng.sample(states, min(k, len(states))))
            if not pre_holds(subset):
                continue
            post_set = session.engine.sem(task.command, subset)
            if not post_holds(post_set):
                return Refuted(
                    self.name, method, witness=Witness(subset, post_set)
                )
        return Undecided(
            self.name,
            method,
            reason="%d random subsets found no refutation (evidence, not proof)"
            % self.samples,
        )
