"""Incremental re-verification: the ledger, the cone, the counters.

``Session.reverify`` must be *invisible* semantically — same verdicts,
proofs and witnesses as a cold ``verify_many`` — while reusing stored
outcomes for unchanged tasks.  These tests pin the reuse accounting
(``fingerprint_hits`` / ``cone_invalidations`` / ``artifacts_reused``),
the ``changed=`` cone drop, the configuration sensitivity of ledger
keys, the semantic-assertion fallback, and the :meth:`Session.reset`
contract (a reset session re-verifies exactly like a cold one).
"""

import pytest

from repro.api.session import Report, Session
from repro.assertions.semantic import sem
from repro.codec import from_wire, to_wire

SUITE = [
    ("forall <a>, <b>. a(l) == b(l)",
     "y := nonDet(); l := h xor y",
     "forall <a>, <b>. exists <c>. c(h) == a(h) && c(l) == b(l)"),
    ("forall <a>. a(l) == 0", "l := 0", "forall <a>. a(l) == 0"),
    ("exists <a>. a(h) == 1", "l := h", "exists <a>. a(l) == 1"),
    ("true", "l := h", "forall <a>, <b>. a(l) == b(l)"),
]


@pytest.fixture
def session():
    return Session(["h", "l", "y"], lo=0, hi=1)


def cold_report(tasks, **kwargs):
    return Session(["h", "l", "y"], lo=0, hi=1).verify_many(tasks, **kwargs)


class TestReuse:
    def test_unchanged_suite_is_fully_reused(self, session):
        first = session.verify_many(SUITE)
        again = session.reverify(SUITE)
        assert again.fingerprint_hits == len(SUITE)
        assert again.cone_invalidations == 0
        assert [r.verdict for r in again] == [r.verdict for r in first]
        assert [r.method for r in again] == [r.method for r in first]
        # reused results are the ledger'd objects — nothing re-ran
        assert all(a is b for a, b in zip(first.results, again.results))

    def test_edit_one_task_reruns_only_it(self, session):
        session.verify_many(SUITE)
        old_cmd = session.parse_program(SUITE[1][1])
        edited = list(SUITE)
        edited[1] = (SUITE[1][0], "l := 1", SUITE[1][2])
        report = session.reverify(edited, changed=[old_cmd])
        assert report.fingerprint_hits == len(SUITE) - 1
        assert report.cone_invalidations > 0
        cold = cold_report(edited)
        assert [r.verdict for r in report] == [r.verdict for r in cold]
        assert [r.method for r in report] == [r.method for r in cold]

    def test_cold_session_reverify_is_just_verify(self, session):
        report = session.reverify(SUITE)
        assert report.fingerprint_hits == 0
        cold = cold_report(SUITE)
        assert [r.verdict for r in report] == [r.verdict for r in cold]

    def test_reverify_without_changed_still_reuses(self, session):
        session.verify_many(SUITE)
        edited = list(SUITE)
        edited[0] = ("true", SUITE[0][1], SUITE[0][2])
        report = session.reverify(edited)
        # content addressing needs no edit declaration for correctness:
        # the edited task misses, the rest hit
        assert report.fingerprint_hits == len(SUITE) - 1
        assert report.cone_invalidations == 0
        assert [r.verdict for r in report] == [
            r.verdict for r in cold_report(edited)
        ]


class TestConeInvalidation:
    def test_changed_drops_the_ledger_entry(self, session):
        session.verify_many(SUITE)
        before = len(session._ledger)
        old_cmd = session.parse_program(SUITE[1][1])
        dropped = session.invalidate([old_cmd])
        assert dropped > 0
        assert len(session._ledger) == before - 1

    def test_changed_accepts_raw_fingerprints(self, session):
        from repro.deps import fingerprint

        session.verify_many(SUITE)
        old_cmd = session.parse_program(SUITE[1][1])
        report = session.reverify(SUITE, changed=[fingerprint(old_cmd)])
        # the task itself was not edited, so after the cone drop it
        # simply re-runs and re-ledgers — N-1 hits, same verdicts
        assert report.fingerprint_hits == len(SUITE) - 1
        assert report.cone_invalidations > 0

    def test_editing_a_shared_subtree_invalidates_all_containers(self):
        session = Session(["h", "l", "y"], lo=0, hi=1)
        shared = [
            ("forall <a>. a(l) == 0", "l := 0", "forall <a>. a(l) == 0"),
            ("true", "l := 0", "exists <a>. a(l) == 0"),
        ]
        session.verify_many(shared)
        old_cmd = session.parse_program("l := 0")
        report = session.reverify(shared, changed=[old_cmd])
        # both tasks contain the changed subtree: neither may be reused
        # from a stale ledger after its declared edit
        assert report.fingerprint_hits == 0

    def test_semantic_changed_items_are_skipped(self, session):
        session.verify_many(SUITE)
        dropped = session.invalidate([sem(lambda s: True)])
        assert dropped == 0


class TestLedgerKeys:
    def test_budget_change_is_never_a_false_hit(self, session):
        session.verify_many(SUITE)
        report = session.reverify(SUITE, budgets={"exhaustive": 30.0})
        assert report.fingerprint_hits == 0

    def test_backend_chain_change_is_never_a_false_hit(self, session):
        from repro.api.backends import ExhaustiveBackend

        session.verify_many(SUITE)
        report = session.reverify(SUITE, backends=[ExhaustiveBackend()])
        assert report.fingerprint_hits == 0

    def test_semantic_tasks_always_rerun(self, session):
        suite = [
            (sem(lambda states: bool(states)), "l := 0", sem(lambda states: True)),
        ]
        first = session.verify_many(suite)
        again = session.reverify(suite)
        assert again.fingerprint_hits == 0
        assert [r.verdict for r in again] == [r.verdict for r in first]


class TestReset:
    def test_reset_reverifies_like_a_cold_run(self, session):
        session.verify_many(SUITE)
        session.reset()
        report = session.reverify(SUITE)
        assert report.fingerprint_hits == 0
        assert len(session.deps) > 0  # re-recorded by the fresh run
        cold = cold_report(SUITE)
        assert [r.verdict for r in report] == [r.verdict for r in cold]
        assert [r.method for r in report] == [r.method for r in cold]

    def test_reset_empties_every_cache_and_the_graph(self, session):
        session.verify_many(SUITE)
        assert len(session.deps) > 0 and len(session._ledger) > 0
        session.reset()
        assert len(session.deps) == 0
        assert len(session._ledger) == 0
        assert session.cache_info()["entailment_size"] == 0
        assert session.cache_info()["image_size"] == 0
        assert session.cache_info()["compile_size"] == 0

    def test_cache_clear_paths_drop_graph_entries(self, session):
        session.verify_many(SUITE)
        session.oracle.cache_clear()
        assert not any(a[0] == "entail" for a in session.deps._deps)
        session.images.clear()
        session.compiles.clear()
        kinds = {a[0] for a in session.deps._deps}
        assert kinds <= {"result"}


class TestCounters:
    def test_report_counters_round_trip_the_codec(self):
        report = Report(
            (), fingerprint_hits=3, cone_invalidations=2, artifacts_reused=7
        )
        decoded = from_wire(to_wire(report))
        assert decoded.fingerprint_hits == 3
        assert decoded.cone_invalidations == 2
        assert decoded.artifacts_reused == 7

    def test_summary_mentions_the_incremental_line(self, session):
        session.verify_many(SUITE)
        report = session.reverify(SUITE)
        assert "incremental: %d fingerprint hits" % len(SUITE) in report.summary()

    def test_artifacts_reused_counts_subtree_hits(self, session):
        session.verify_many(SUITE)
        edited = list(SUITE)
        edited[0] = ("true", SUITE[0][1], SUITE[0][2])
        report = session.reverify(edited)
        # the re-run task shares its command and post with the warm run:
        # compiled closures / images / verdicts must hit
        assert report.artifacts_reused > 0

    def test_sharded_report_aggregates_artifacts_reused(self, session):
        # two shards, each repeating a command across its chunk: the
        # per-worker compile/image/entailment hits must flow back
        suite = SUITE * 2
        report = session.verify_many(suite, sharding="process", shards=2)
        assert report.artifacts_reused > 0
        assert report.fingerprint_hits == 0  # plain batches never claim reuse
        decoded = from_wire(to_wire(report))
        assert decoded.artifacts_reused == report.artifacts_reused
