"""Shared helpers for the App. C logic embeddings."""

from itertools import product

from ..semantics.bigstep import post_states
from ..semantics.state import ExtState


def predicate_hyperproperty(predicate, name):
    """Wrap a relation predicate as a ProgramHyperproperty (late import to
    avoid a package cycle)."""
    from ..hyperprops.base import ProgramHyperproperty

    return ProgramHyperproperty(predicate, name)


def k_step(command, phis, universe):
    """The lifted relation ``⟨C, φ⃗⟩ →k φ⃗'`` (App. C.1): all tuples of
    final extended states reachable componentwise (logical parts kept)."""
    domain = universe.domain
    per_component = []
    for phi in phis:
        finals = post_states(command, phi.prog, domain)
        per_component.append([ExtState(phi.log, s2) for s2 in finals])
    return [tuple(combo) for combo in product(*per_component)]


def tagged(phis, tag, k):
    """Whether the i-th state of the tuple carries logical tag ``i+1``."""
    return all(phis[i].log.get(tag) == i + 1 for i in range(k))


def all_tuples(universe, k):
    """All k-tuples of extended states over the universe."""
    return product(universe.ext_states(), repeat=k)
